//! Effect-trace soundness auditor and contract lint pass.
//!
//! The static analysis promises that every `TransitionSummary`
//! *over-approximates* the runtime behaviour of its transition (paper §3.2).
//! This module checks that promise against reality: the interpreter's
//! [`DynamicFootprint`] (one concrete execution's reads, writes, accepts and
//! sends) is abstracted back into the Fig-6 domain and tested for containment
//! in the summary. Any escape — a read of a component the summary never
//! mentions, a write whose concrete op the abstract `ContribType` does not
//! subsume, an accept or send with no static counterpart — is a bug in the
//! analysis (or a deliberately weakened summary) and is reported as a
//! structured [`AuditViolation`] with the offending pseudo-field, the
//! abstract vs. observed op, and the source span.
//!
//! The containment relation, for a non-⊤ summary `S` and footprint `F`:
//!
//! * every concrete read in `F` is covered by some `Read(pf)` in `S`
//!   (a whole-field `pf` covers any entry of that field; an entry `pf`
//!   covers a concrete access whose keys agree under the transaction's
//!   argument binding);
//! * every concrete write is covered by some `Write(pf, τ)`, and if `τ` is a
//!   commutative contribution (paper §3.4) the observed op must be one of its
//!   declared merge ops (`add`/`sub`) — an overwrite-style `τ` subsumes any
//!   concrete op;
//! * `accept` executed ⇒ `AcceptFunds ∈ S`; every sent message is covered by
//!   some `SendMsg` with a compatible tag and amount-zero claim.
//!
//! A summary containing `⊤` vacuously contains every footprint and is
//! skipped. On top of the same machinery, [`audit_placement`] checks the
//! derived sharding discipline (hogged fields only touched by their owner
//! shard, non-owner reads only where a weak read was accepted), and
//! [`lint_contract`] reports contract-quality findings (lost updates, causes
//! of ⊤ summaries, dead fields, accepts that never reach a balance).

use crate::domain::{ContribSource, ContribType, PseudoField};
use crate::effects::{Effect, MsgAbs, TransitionSummary};
use crate::signature::{is_commutative_write, Join, ShardingSignature, TransitionConstraints};
use crate::solver::AnalyzedContract;
use scilla::ast::{Ident, Stmt};
use scilla::span::Span;
use scilla::trace::{DynamicFootprint, ObservedOp, TraceWrite};
use scilla::typechecker::CheckedModule;
use scilla::types::Type;
use scilla::value::Value;
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// What kind of containment breach an [`AuditViolation`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// A concrete read of a component no static `Read` covers.
    UnsummarisedRead,
    /// A concrete write of a component no static `Write` covers.
    UnsummarisedWrite,
    /// A covered write whose concrete op escapes the commutative abstract op
    /// set (e.g. an overwrite observed where the summary promised `add`).
    NonCommutativeOp,
    /// `accept` ran but the summary has no `AcceptFunds`.
    UnsummarisedAccept,
    /// A message was sent that no static `SendMsg` covers.
    UnsummarisedSend,
    /// A shard read a hogged component it does not own, without a weak read.
    NotOwnedRead,
    /// A shard wrote a component it does not own (and the field's join is
    /// not a commutative merge).
    NotOwnedWrite,
    /// A transition with the unsatisfiable constraint executed on a shard.
    UnsatOnShard,
    /// A pair of invocations whose concrete footprints interfere, yet the
    /// static conflict matrix judged them commuting under the pair's
    /// bindings — the parallel scheduler would have run them in one layer.
    ConflictMissed,
    /// A traced multi-contract invocation chain reached a (contract,
    /// transition) frame outside its composed interprocedural summary
    /// ([`crate::callgraph`]) — the static callee set under-approximated a
    /// real chain.
    ComposedEscape,
}

impl ViolationKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationKind::UnsummarisedRead => "UnsummarisedRead",
            ViolationKind::UnsummarisedWrite => "UnsummarisedWrite",
            ViolationKind::NonCommutativeOp => "NonCommutativeOp",
            ViolationKind::UnsummarisedAccept => "UnsummarisedAccept",
            ViolationKind::UnsummarisedSend => "UnsummarisedSend",
            ViolationKind::NotOwnedRead => "NotOwnedRead",
            ViolationKind::NotOwnedWrite => "NotOwnedWrite",
            ViolationKind::UnsatOnShard => "UnsatOnShard",
            ViolationKind::ConflictMissed => "ConflictMissed",
            ViolationKind::ComposedEscape => "ComposedEscape",
        }
    }

    fn parse(s: &str) -> Option<ViolationKind> {
        Some(match s {
            "UnsummarisedRead" => ViolationKind::UnsummarisedRead,
            "UnsummarisedWrite" => ViolationKind::UnsummarisedWrite,
            "NonCommutativeOp" => ViolationKind::NonCommutativeOp,
            "UnsummarisedAccept" => ViolationKind::UnsummarisedAccept,
            "UnsummarisedSend" => ViolationKind::UnsummarisedSend,
            "NotOwnedRead" => ViolationKind::NotOwnedRead,
            "NotOwnedWrite" => ViolationKind::NotOwnedWrite,
            "UnsatOnShard" => ViolationKind::UnsatOnShard,
            "ConflictMissed" => ViolationKind::ConflictMissed,
            "ComposedEscape" => ViolationKind::ComposedEscape,
            _ => return None,
        })
    }

    /// All variants, for exhaustive wire tests.
    pub fn all() -> [ViolationKind; 10] {
        [
            ViolationKind::UnsummarisedRead,
            ViolationKind::UnsummarisedWrite,
            ViolationKind::NonCommutativeOp,
            ViolationKind::UnsummarisedAccept,
            ViolationKind::UnsummarisedSend,
            ViolationKind::NotOwnedRead,
            ViolationKind::NotOwnedWrite,
            ViolationKind::UnsatOnShard,
            ViolationKind::ConflictMissed,
            ViolationKind::ComposedEscape,
        ]
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One containment breach: a concrete effect that escaped its summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    pub kind: ViolationKind,
    /// The transition whose execution escaped.
    pub transition: String,
    /// The nearest static pseudo-field (param-name keys), when one exists.
    pub pseudofield: Option<PseudoField>,
    /// The concrete access, rendered (`balances[0x0101…]`).
    pub concrete: String,
    /// The abstract op set the summary declared for this component.
    pub abstract_op: Option<String>,
    /// The concretely observed op (`add(+30)`, `set`, …).
    pub observed_op: Option<String>,
    /// Source location of the escaping statement.
    pub span: Span,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in transition '{}' at {}: {}", self.kind, self.transition, self.span, self.concrete)?;
        if let (Some(a), Some(o)) = (&self.abstract_op, &self.observed_op) {
            write!(f, " (abstract {a}, observed {o})")?;
        } else if let Some(o) = &self.observed_op {
            write!(f, " (observed {o})")?;
        }
        Ok(())
    }
}

impl AuditViolation {
    /// Serialises to the stable JSON wire form.
    pub fn to_json(&self) -> String {
        wire::violation_to_json(self).to_string()
    }

    /// Parses the JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed element.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v: serde_json::Value = serde_json::from_str(s).map_err(|e| e.to_string())?;
        wire::violation_from_json(&v)
    }
}

mod wire {
    use super::{AuditViolation, PseudoField, Span, ViolationKind};
    use serde_json::{json, Value};

    pub(super) fn violation_to_json(v: &AuditViolation) -> Value {
        let pf_json = match &v.pseudofield {
            Some(pf) => {
                let keys: Vec<Value> = pf.keys.iter().map(Value::from).collect();
                json!({"field": &pf.field, "keys": Value::Array(keys)})
            }
            None => Value::Null,
        };
        let opt = |o: &Option<String>| o.clone().map(Value::from).unwrap_or(Value::Null);
        let span = json!({
            "start": v.span.start as u64,
            "end": v.span.end as u64,
            "line": u64::from(v.span.line),
            "col": u64::from(v.span.col),
        });
        json!({
            "kind": v.kind.as_str(),
            "transition": &v.transition,
            "pseudofield": pf_json,
            "concrete": &v.concrete,
            "abstract_op": opt(&v.abstract_op),
            "observed_op": opt(&v.observed_op),
            "span": span,
        })
    }

    fn str_of(v: &Value, key: &str) -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("violation lacks string '{key}'"))
    }

    fn opt_str(v: &Value, key: &str) -> Option<String> {
        v.get(key).and_then(Value::as_str).map(str::to_string)
    }

    pub(super) fn violation_from_json(v: &Value) -> Result<AuditViolation, String> {
        let kind = ViolationKind::parse(&str_of(v, "kind")?)
            .ok_or_else(|| "unknown violation kind".to_string())?;
        let pseudofield = match v.get("pseudofield") {
            None | Some(Value::Null) => None,
            Some(pf) => {
                let field = str_of(pf, "field")?;
                let keys = pf
                    .get("keys")
                    .and_then(Value::as_array)
                    .ok_or("pseudofield lacks keys")?
                    .iter()
                    .map(|k| k.as_str().map(str::to_string).ok_or("non-string key"))
                    .collect::<Result<Vec<_>, _>>()?;
                Some(PseudoField { field, keys })
            }
        };
        let sp = v.get("span").ok_or("violation lacks span")?;
        let num = |key: &str| -> Result<u64, String> {
            sp.get(key).and_then(Value::as_u64).ok_or_else(|| format!("span lacks '{key}'"))
        };
        Ok(AuditViolation {
            kind,
            transition: str_of(v, "transition")?,
            pseudofield,
            concrete: str_of(v, "concrete")?,
            abstract_op: opt_str(v, "abstract_op"),
            observed_op: opt_str(v, "observed_op"),
            span: Span {
                start: num("start")? as usize,
                end: num("end")? as usize,
                line: num("line")? as u32,
                col: num("col")? as u32,
            },
        })
    }
}

fn render_access(field: &str, keys: &[Value]) -> String {
    let mut s = field.to_string();
    for k in keys {
        s.push('[');
        s.push_str(&k.to_string());
        s.push(']');
    }
    s
}

/// Does the static pseudo-field cover the concrete access, under the
/// transaction's argument binding `resolve` (param name → concrete value)?
///
/// A whole-field pseudo-field covers every entry of its field. An entry
/// pseudo-field covers a same-depth access whose every key either resolves to
/// the observed concrete value or cannot be resolved (unknown bindings are
/// treated as wildcards so imprecise resolution never fabricates an escape).
/// Derived keys (`sha256hash(account)`) resolve their base parameter and
/// replay the derivation (see [`crate::domain::resolve_key`]).
fn pf_covers(
    pf: &PseudoField,
    field: &str,
    keys: &[Value],
    resolve: &dyn Fn(&str) -> Option<Value>,
) -> bool {
    if pf.field != field {
        return false;
    }
    if pf.is_whole_field() {
        return true;
    }
    if pf.keys.len() != keys.len() {
        return false;
    }
    pf.keys.iter().zip(keys).all(|(name, concrete)| {
        match crate::domain::resolve_key(name, resolve) {
            Some(v) => v == *concrete,
            None => true,
        }
    })
}

/// Renders the abstract op set of the self-contribution of `t` on `pf`
/// (e.g. `{add}`), or the overwrite/⊤ nature of the write.
fn render_abstract_op(pf: &PseudoField, t: &ContribType) -> String {
    if t.is_top() {
        return "⊤".into();
    }
    if !is_commutative_write(pf, t) {
        return "overwrite".into();
    }
    let Some(sources) = t.sources() else { return "⊥".into() };
    for (cs, c) in sources {
        if let ContribSource::Field(f) = cs {
            if f == pf {
                let ops: Vec<String> = c.ops.iter().map(|o| o.to_string()).collect();
                return format!("{{{}}}", ops.join(", "));
            }
        }
    }
    "⊥".into()
}

/// Does the static write `(pf, t)` subsume the concretely observed op?
///
/// Overwrite-style writes (non-commutative `τ`, including `⊤` and `⊥`)
/// subsume everything: the merge discipline treats them as ownership-gated
/// full overwrites. A commutative write only subsumes deltas expressible in
/// its declared merge ops.
fn write_subsumes(pf: &PseudoField, t: &ContribType, op: &ObservedOp) -> bool {
    if !is_commutative_write(pf, t) {
        return true;
    }
    if op.is_noop() {
        return true;
    }
    let has_op = |name: &str| {
        t.sources().is_some_and(|sources| {
            sources.iter().any(|(cs, c)| {
                matches!(cs, ContribSource::Field(f) if f == pf)
                    && c.ops.iter().any(|o| o.to_string() == name)
            })
        })
    };
    match op {
        ObservedOp::Add(_) => has_op("add"),
        ObservedOp::Sub(_) => has_op("sub"),
        ObservedOp::Set | ObservedOp::Delete => false,
    }
}

fn send_covered(send_tag: &str, send_amount: u128, m: &MsgAbs) -> bool {
    if let Some(tag) = &m.tag {
        if tag != send_tag {
            return false;
        }
    }
    !(m.amount_is_zero && send_amount > 0)
}

/// Checks one concrete footprint for containment in its static summary.
///
/// `resolve` maps a pseudo-field key name (a transition parameter, `_sender`,
/// or `_origin`) to the concrete value it was bound to in this invocation;
/// returning `None` makes that key a wildcard.
///
/// A summary containing `⊤` contains everything and yields no violations.
pub fn audit_transition(
    fp: &DynamicFootprint,
    summary: &TransitionSummary,
    resolve: &dyn Fn(&str) -> Option<Value>,
) -> Vec<AuditViolation> {
    let mut out = Vec::new();
    if summary.has_top() {
        return out;
    }

    for r in &fp.reads {
        let covered = summary.reads().any(|pf| pf_covers(pf, &r.field, &r.keys, resolve))
            // A static write to the same component also witnesses awareness of
            // it, but reads must still be declared: the derivation's weak-read
            // logic keys off Read effects. Only whole-field *writes* (which
            // force ownership of the whole field) excuse an undeclared read.
            || summary
                .writes()
                .any(|(pf, _)| pf.is_whole_field() && pf.field == r.field)
            // A field-localized ⊤ subsumes every access to its field.
            || summary.top_fields().any(|pf| pf_covers(pf, &r.field, &r.keys, resolve))
            // A read that only observes this invocation's own earlier write
            // to the exact same component never touches pre-state; store
            // forwarding elides its static `Read`, so the audit excuses it.
            // (The earlier write is itself audited for coverage below.)
            || fp.writes.iter().any(|w| {
                w.field == r.field && w.keys == r.keys && w.span.start <= r.span.start
            });
        if !covered {
            out.push(AuditViolation {
                kind: ViolationKind::UnsummarisedRead,
                transition: fp.transition.clone(),
                pseudofield: nearest_pf(summary, &r.field),
                concrete: render_access(&r.field, &r.keys),
                abstract_op: None,
                observed_op: None,
                span: r.span,
            });
        }
    }

    for w in &fp.writes {
        out.extend(audit_write(fp, summary, w, resolve));
    }

    if fp.accepts > 0 && !summary.effects.iter().any(|e| matches!(e, Effect::AcceptFunds)) {
        out.push(AuditViolation {
            kind: ViolationKind::UnsummarisedAccept,
            transition: fp.transition.clone(),
            pseudofield: None,
            concrete: "accept".into(),
            abstract_op: None,
            observed_op: None,
            span: Span::dummy(),
        });
    }

    for s in &fp.sends {
        let covered = summary.effects.iter().any(
            |e| matches!(e, Effect::SendMsg(m) if send_covered(&s.tag, s.amount, m)),
        );
        if !covered {
            out.push(AuditViolation {
                kind: ViolationKind::UnsummarisedSend,
                transition: fp.transition.clone(),
                pseudofield: None,
                concrete: format!("send tag '{}' amount {}", s.tag, s.amount),
                abstract_op: None,
                observed_op: None,
                span: s.span,
            });
        }
    }

    out
}

fn nearest_pf(summary: &TransitionSummary, field: &str) -> Option<PseudoField> {
    summary
        .reads()
        .chain(summary.writes().map(|(pf, _)| pf))
        .find(|pf| pf.field == field)
        .cloned()
}

fn audit_write(
    fp: &DynamicFootprint,
    summary: &TransitionSummary,
    w: &TraceWrite,
    resolve: &dyn Fn(&str) -> Option<Value>,
) -> Vec<AuditViolation> {
    // A field-localized ⊤ declares unbounded effects on its field: any
    // write to it, with any op, is contained (ownership of the whole field
    // is forced by the `Owns` constraint the signature derives from it).
    if summary.top_fields().any(|pf| pf_covers(pf, &w.field, &w.keys, resolve)) {
        return Vec::new();
    }
    let matching: Vec<(&PseudoField, &ContribType)> =
        summary.writes().filter(|(pf, _)| pf_covers(pf, &w.field, &w.keys, resolve)).collect();
    if matching.is_empty() {
        return vec![AuditViolation {
            kind: ViolationKind::UnsummarisedWrite,
            transition: fp.transition.clone(),
            pseudofield: nearest_pf(summary, &w.field),
            concrete: render_access(&w.field, &w.keys),
            abstract_op: None,
            observed_op: Some(w.op.to_string()),
            span: w.span,
        }];
    }
    if matching.iter().any(|(pf, t)| write_subsumes(pf, t, &w.op)) {
        return Vec::new();
    }
    let (pf, t) = matching[0];
    vec![AuditViolation {
        kind: ViolationKind::NonCommutativeOp,
        transition: fp.transition.clone(),
        pseudofield: Some(pf.clone()),
        concrete: render_access(&w.field, &w.keys),
        abstract_op: Some(render_abstract_op(pf, t)),
        observed_op: Some(w.op.to_string()),
        span: w.span,
    }]
}

/// Checks the sharding discipline for one footprint executed on `shard`.
///
/// `component_shard` maps a concrete component (field + concrete keys) to its
/// owner shard, mirroring the dispatcher's placement function.
///
/// Rules (paper §3.4–3.5): a transition with the unsatisfiable constraint may
/// never run on a shard; a write or read of a field whose join is
/// `OwnOverwrite` must happen on the owner shard of the touched component.
/// `IntMerge` fields are exempt on both sides: deltas compose from any shard,
/// and their reads are either self-reads absorbed by delta extraction
/// (read-modify-write of the same component) or weak reads the deployer
/// accepted at derivation time — a declined weak read revokes the `IntMerge`
/// join itself, so the final signature already encodes the read discipline.
pub fn audit_placement(
    fp: &DynamicFootprint,
    sig: &ShardingSignature,
    tcons: &TransitionConstraints,
    shard: u32,
    component_shard: &dyn Fn(&str, &[Value]) -> u32,
) -> Vec<AuditViolation> {
    let mut out = Vec::new();
    if !tcons.is_shardable() {
        out.push(AuditViolation {
            kind: ViolationKind::UnsatOnShard,
            transition: fp.transition.clone(),
            pseudofield: None,
            concrete: format!("executed on shard {shard} despite Unsat constraint"),
            abstract_op: None,
            observed_op: None,
            span: Span::dummy(),
        });
        return out;
    }
    for w in &fp.writes {
        match sig.joins.get(&w.field) {
            Some(Join::OwnOverwrite) => {
                let owner = component_shard(&w.field, &w.keys);
                if owner != shard {
                    out.push(AuditViolation {
                        kind: ViolationKind::NotOwnedWrite,
                        transition: fp.transition.clone(),
                        pseudofield: None,
                        concrete: format!(
                            "{} owned by shard {owner}, written on shard {shard}",
                            render_access(&w.field, &w.keys)
                        ),
                        abstract_op: None,
                        observed_op: Some(w.op.to_string()),
                        span: w.span,
                    });
                }
            }
            // IntMerge deltas compose from any shard; a write to a field
            // outside the joins is an analysis escape that the containment
            // audit already reports.
            Some(Join::IntMerge) | None => {}
        }
    }
    for r in &fp.reads {
        if sig.joins.get(&r.field) != Some(&Join::OwnOverwrite) {
            continue;
        }
        let owner = component_shard(&r.field, &r.keys);
        if owner != shard {
            out.push(AuditViolation {
                kind: ViolationKind::NotOwnedRead,
                transition: fp.transition.clone(),
                pseudofield: None,
                concrete: format!(
                    "{} owned by shard {owner}, read on shard {shard}",
                    render_access(&r.field, &r.keys)
                ),
                abstract_op: None,
                observed_op: None,
                span: r.span,
            });
        }
    }
    out
}

/// One contract-quality finding from the lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Stable rule name (`write-never-read-back`, `top-summary`,
    /// `dead-pseudofield`, `accept-no-balance-effect`,
    /// `dynamic-recipient`).
    pub rule: &'static str,
    pub transition: Option<String>,
    pub field: Option<String>,
    pub span: Option<Span>,
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.rule)?;
        if let Some(t) = &self.transition {
            write!(f, " transition '{t}'")?;
        }
        if let Some(sp) = &self.span {
            write!(f, " at {sp}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Runs the lint rule catalogue over an analysed contract.
///
/// Rules:
/// * `write-never-read-back` — a field some transition writes but whose
///   value no transition of the contract ever consumes: every write is a
///   potential lost update (nothing downstream observes it), or the field is
///   write-only telemetry. "Consumes" is contract-global and counts every
///   reading position — explicit loads/map gets, condition scrutinees,
///   outgoing-message recipients and amounts, and contributions flowing
///   into any field's written value (a read in *one* transition clears the
///   field for the whole contract).
/// * `top-summary` — a transition whose summary contains a `⊤` in any form:
///   global (legacy mode) or field-localized (`⊤[pf]`). The message names
///   the blamed statement — kind, detail, and span from the analysis's
///   [`crate::blame::BlameCause`] record — so the author can restructure;
///   for summaries produced without blame collection it falls back to a
///   syntactic scan for the first offending construct.
/// * `dead-pseudofield` — a declared field no summary mentions at all.
/// * `accept-no-balance-effect` — a transition accepts funds but the
///   accepted `_amount` never flows into any state write, so the deposit is
///   absorbed without a ledger trace.
/// * `dynamic-recipient` — a transition sends to a recipient the
///   call-graph classifier ([`crate::callgraph`]) cannot resolve
///   statically (computed, or read from mutable state): the interprocedural
///   composition widens to `⊤` at the site, so every such send serialises
///   at the DS committee.
///
/// The two whole-contract rules are suppressed when any summary is a global
/// `⊤` (unknown effects could be the missing read/mention); a field-localized
/// `⊤` only exempts its own field from them.
pub fn lint_contract(checked: &CheckedModule, analyzed: &AnalyzedContract) -> Vec<LintFinding> {
    let mut out = Vec::new();
    let any_top = analyzed.summaries.iter().any(TransitionSummary::has_top);

    let mut read_fields: BTreeSet<&str> = BTreeSet::new();
    let mut written_fields: BTreeSet<&str> = BTreeSet::new();
    let mut mentioned: BTreeSet<&str> = BTreeSet::new();
    for s in &analyzed.summaries {
        for pf in s.reads() {
            read_fields.insert(&pf.field);
            mentioned.insert(&pf.field);
        }
        // A field-localized ⊤ may read and write its field arbitrarily, so
        // it suppresses the contract-global rules for that field only.
        for pf in s.top_fields() {
            read_fields.insert(&pf.field);
            written_fields.insert(&pf.field);
            mentioned.insert(&pf.field);
        }
        for (pf, t) in s.writes() {
            written_fields.insert(&pf.field);
            mentioned.insert(&pf.field);
            // A contribution flowing into a written value consumes the
            // source field's current value — that is a read-back, even when
            // the summariser elides the paired `Read` effect. This includes
            // the field's own RMW self-contribution (`x := x + 1` observes
            // the previous write of `x`).
            for f in t.fields() {
                mentioned.insert(&f.field);
                read_fields.insert(&f.field);
            }
        }
        for e in &s.effects {
            let ts: Vec<&ContribType> = match e {
                Effect::Condition(t) => vec![t],
                Effect::SendMsg(m) => vec![&m.recipient, &m.amount],
                _ => vec![],
            };
            for t in ts {
                // Condition scrutinees and message payloads consume the
                // field's value just as writes do.
                for f in t.fields() {
                    mentioned.insert(&f.field);
                    read_fields.insert(&f.field);
                }
            }
        }
    }

    if !any_top {
        for field in written_fields.difference(&read_fields) {
            out.push(LintFinding {
                rule: "write-never-read-back",
                transition: None,
                field: Some((*field).to_string()),
                span: field_span(checked, field),
                message: format!(
                    "field '{field}' is written but never read by any transition — \
                     writes cannot influence later behaviour (lost-update candidate)"
                ),
            });
        }
        for f in &checked.contract().fields {
            if !mentioned.contains(f.name.name.as_str()) {
                out.push(LintFinding {
                    rule: "dead-pseudofield",
                    transition: None,
                    field: Some(f.name.name.clone()),
                    span: Some(f.name.span),
                    message: format!(
                        "field '{}' is never read, written, or mentioned by any transition",
                        f.name.name
                    ),
                });
            }
        }
    }

    for s in &analyzed.summaries {
        let top_fields: Vec<String> =
            s.top_fields().map(|pf| pf.field.clone()).collect::<BTreeSet<_>>().into_iter().collect();
        if s.has_top() || !top_fields.is_empty() {
            // The blame engine knows the exact statement that cost the
            // precision; fall back to the syntactic scan for legacy-mode
            // summaries analysed without blame collection.
            let blame = analyzed
                .blames
                .iter()
                .filter(|b| b.transition == s.name)
                .find(|b| match &b.field {
                    Some(pf) => top_fields.contains(&pf.field),
                    None => s.has_top(),
                })
                .or_else(|| analyzed.blames.iter().find(|b| b.transition == s.name));
            let scope = if s.has_top() {
                "summary is ⊤".to_string()
            } else {
                format!("summary has ⊤ on field(s) {}", top_fields.join(", "))
            };
            let (message, span) = match blame {
                Some(b) => (format!("{scope}: [{}] {}", b.kind, b.detail), Some(b.span)),
                None => {
                    let t = checked.contract().transition(&s.name);
                    match t.and_then(|t| top_cause(checked, t)) {
                        Some(c) => (format!("{scope}: {}", c.reason), Some(c.span)),
                        None => (
                            format!(
                                "{scope} from an unanalysed construct \
                                 (data-dependent branch or dynamic message list)"
                            ),
                            t.and_then(|t| t.body.first().map(Stmt::span)),
                        ),
                    }
                }
            };
            out.push(LintFinding {
                rule: "top-summary",
                transition: Some(s.name.clone()),
                field: top_fields.first().cloned(),
                span,
                message,
            });
        }
        let accepts = s.effects.iter().any(|e| matches!(e, Effect::AcceptFunds));
        if accepts && !s.has_top() && !amount_reaches_state(s) {
            out.push(LintFinding {
                rule: "accept-no-balance-effect",
                transition: Some(s.name.clone()),
                field: None,
                span: None,
                message: format!(
                    "transition '{}' accepts funds but the accepted _amount never \
                     flows into any state write or outgoing message",
                    s.name
                ),
            });
        }
    }

    // `dynamic-recipient`: classify every send site through the call-graph
    // extractor and flag the transitions whose recipients stay ⊤.
    let calls = crate::callgraph::ContractCalls::extract(checked, &analyzed.summaries);
    for (transition, count) in calls.dynamic_recipients() {
        out.push(LintFinding {
            rule: "dynamic-recipient",
            transition: Some(transition.clone()),
            field: None,
            span: None,
            message: format!(
                "{count} send(s) in '{transition}' have a statically unresolvable \
                 recipient — the interprocedural composition cannot follow them, \
                 so these chains always serialise at the DS committee"
            ),
        });
    }

    out
}

fn field_span(checked: &CheckedModule, field: &str) -> Option<Span> {
    checked.contract().fields.iter().find(|f| f.name.name == field).map(|f| f.name.span)
}

fn amount_reaches_state(s: &TransitionSummary) -> bool {
    let amount = ContribSource::Param("_amount".into());
    s.effects.iter().any(|e| match e {
        Effect::Write(_, t) => contrib_mentions(t, &amount),
        Effect::SendMsg(m) => contrib_mentions(&m.amount, &amount),
        _ => false,
    })
}

fn contrib_mentions(t: &ContribType, cs: &ContribSource) -> bool {
    match t.sources() {
        Some(sources) => sources.contains_key(cs),
        // ⊤ might mention anything — assume it does (suppresses the lint).
        None => true,
    }
}

struct TopCause {
    reason: String,
    span: Span,
}

/// Finds the first construct that forces a `⊤` summary, mirroring the
/// analysis rules syntactically: a non-parameter (computed) map key, a
/// load/read after a write to the same field, or a map access that does not
/// reach a bottom-level value. Branch-data causes (match on `⊤` scrutinee,
/// dynamic send lists) need the abstract environment and are reported by the
/// caller as a generic cause.
fn top_cause(checked: &CheckedModule, t: &scilla::ast::Transition) -> Option<TopCause> {
    let mut key_params: HashSet<&str> = t.params.iter().map(|p| p.name.name.as_str()).collect();
    key_params.insert("_sender");
    key_params.insert("_origin");
    let mut written: HashSet<&str> = HashSet::new();
    walk_stmts(checked, &key_params, &mut written, &t.body)
}

fn bad_map_access(
    checked: &CheckedModule,
    key_params: &HashSet<&str>,
    field: &Ident,
    keys: &[Ident],
    span: Span,
) -> Option<TopCause> {
    if let Some(k) = keys.iter().find(|k| !key_params.contains(k.name.as_str())) {
        return Some(TopCause {
            reason: format!(
                "map key '{}' of '{}' is computed, not a transition parameter",
                k.name, field.name
            ),
            span: k.span,
        });
    }
    let depth_ok = checked
        .field_types
        .get(&field.name)
        .and_then(|fty| fty.map_access(keys.len()))
        .is_some_and(|(_, value_ty)| !matches!(value_ty, Type::Map(..)));
    if !depth_ok {
        return Some(TopCause {
            reason: format!(
                "access of '{}' with {} key(s) does not reach a bottom-level value",
                field.name,
                keys.len()
            ),
            span,
        });
    }
    None
}

fn walk_stmts<'a>(
    checked: &CheckedModule,
    key_params: &HashSet<&str>,
    written: &mut HashSet<&'a str>,
    body: &'a [Stmt],
) -> Option<TopCause> {
    for s in body {
        match s {
            Stmt::Load { field, .. } if written.contains(field.name.as_str()) => {
                return Some(TopCause {
                    reason: format!("load of '{}' after a write to it", field.name),
                    span: s.span(),
                });
            }
            Stmt::Store { field, .. } => {
                written.insert(&field.name);
            }
            Stmt::MapUpdate { map, keys, .. } => {
                if let Some(c) = bad_map_access(checked, key_params, map, keys, s.span()) {
                    return Some(c);
                }
                written.insert(&map.name);
            }
            Stmt::MapDelete { map, keys } => {
                if let Some(c) = bad_map_access(checked, key_params, map, keys, s.span()) {
                    return Some(c);
                }
                written.insert(&map.name);
            }
            Stmt::MapGet { map, keys, .. } | Stmt::MapExists { map, keys, .. } => {
                if let Some(c) = bad_map_access(checked, key_params, map, keys, s.span()) {
                    return Some(c);
                }
                if written.contains(map.name.as_str()) {
                    return Some(TopCause {
                        reason: format!("read of '{}' after a write to it", map.name),
                        span: s.span(),
                    });
                }
            }
            Stmt::Match { clauses, .. } => {
                for (_, body) in clauses {
                    if let Some(c) = walk_stmts(checked, key_params, written, body) {
                        return Some(c);
                    }
                }
            }
            _ => {}
        }
    }
    None
}
