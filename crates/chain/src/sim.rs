//! Deterministic simulation and fault injection over the epoch pipeline.
//!
//! In the style of FoundationDB-like deterministic testing, this module
//! drives the staged epoch API of [`Network`] under a virtual clock and a
//! *seeded fault plan*: shard-thread panics (caught and recovered by
//! rerouting the packet to the DS committee), dropped packets (re-entering
//! the pending pool after an exponential backoff), duplicated packets
//! (exercising §4.2.1 replay protection), reordered packets, and mid-batch
//! gas exhaustion. Same seed + same plan ⇒ bit-identical outcomes, so every
//! failure is replayable.
//!
//! The module also provides the **differential oracle** behind the paper's
//! central claim (Thm 4.6, observational equivalence with sequential
//! execution): a simulated sharded run is replayed on a 1-shard reference
//! chain and the final states, balances, nonces, and per-transaction event
//! logs are compared field by field. Divergences produce a minimized,
//! replayable repro artifact (seed + fault plan + transaction trace) as
//! JSON.

use crate::address::{fnv1a, Address};
use crate::executor::{execute_batch, MicroBlock, Receipt, TxStatus};
use crate::network::{ChainConfig, Network};
use crate::tx::Transaction;
use crate::xshard::{VoteMsg, XShardFaults};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scilla::value::Value;
use serde_json::json;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// The kinds of injected faults (the fault taxonomy in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The shard's executor thread panics mid-batch; its packet is
    /// recovered by rerouting to the DS committee.
    ShardPanic,
    /// The shard's packet is lost in transit; it re-enters the pending pool
    /// after an exponential backoff.
    DropPacket,
    /// The shard's packet is delivered twice — once to the shard, once to
    /// the DS committee — exercising nonce replay protection.
    DuplicatePacket,
    /// The packet arrives with its transactions reversed.
    ReorderPacket,
    /// The shard runs out of gas mid-batch (budget cut to ⅛); the tail is
    /// deferred to later epochs.
    GasExhaustion,
    /// Cross-shard protocol fault: the coordinator crashes between prepare
    /// and commit — its locks go stale (broken at the next epoch's
    /// recovery) and the transaction retries. For this and the other
    /// `xshard` kinds, [`FaultEvent::shard`] selects the *target
    /// transaction* (index into the epoch's xshard packet, modulo its
    /// length) rather than a shard.
    CoordinatorCrash,
    /// Cross-shard protocol fault: one participant's vote is lost in
    /// transit; the coordinator times out and aborts-with-release.
    LostVote,
    /// Cross-shard protocol fault: every vote is delivered twice; the
    /// decision must absorb the duplicates idempotently.
    DuplicateVote,
    /// Cross-shard protocol fault: the votes arrive in reverse order; the
    /// decision must be order-independent.
    ReorderVotes,
    /// Cross-shard protocol fault: a lock leaked by an earlier (unseen)
    /// crash sits on the transaction's first key; it aborts busy and
    /// retries after stale-lock recovery breaks the leak.
    StaleLock,
}

impl FaultKind {
    /// All fault kinds, for plan generation.
    pub fn all() -> [FaultKind; 10] {
        [
            FaultKind::ShardPanic,
            FaultKind::DropPacket,
            FaultKind::DuplicatePacket,
            FaultKind::ReorderPacket,
            FaultKind::GasExhaustion,
            FaultKind::CoordinatorCrash,
            FaultKind::LostVote,
            FaultKind::DuplicateVote,
            FaultKind::ReorderVotes,
            FaultKind::StaleLock,
        ]
    }

    /// Does this kind target the cross-shard commit stage (as opposed to a
    /// shard packet)?
    pub fn is_xshard(self) -> bool {
        matches!(
            self,
            FaultKind::CoordinatorCrash
                | FaultKind::LostVote
                | FaultKind::DuplicateVote
                | FaultKind::ReorderVotes
                | FaultKind::StaleLock
        )
    }

    /// Stable label used in plans, metrics, and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ShardPanic => "shard-panic",
            FaultKind::DropPacket => "drop-packet",
            FaultKind::DuplicatePacket => "duplicate-packet",
            FaultKind::ReorderPacket => "reorder-packet",
            FaultKind::GasExhaustion => "gas-exhaustion",
            FaultKind::CoordinatorCrash => "coordinator-crash",
            FaultKind::LostVote => "lost-vote",
            FaultKind::DuplicateVote => "duplicate-vote",
            FaultKind::ReorderVotes => "reorder-votes",
            FaultKind::StaleLock => "stale-lock",
        }
    }

    /// Parses a [`FaultKind::name`] label.
    ///
    /// # Errors
    ///
    /// Reports an unknown label.
    pub fn from_name(s: &str) -> Result<FaultKind, String> {
        FaultKind::all()
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown fault kind {s}"))
    }
}

/// One scheduled fault: at simulation epoch `epoch`, hit shard `shard` with
/// `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation epoch (0-based, relative to the start of `run_sim`).
    pub epoch: u64,
    /// The targeted transaction shard.
    pub shard: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, replayable schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scheduled faults, in injection order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (fault-free run — what the reference chain uses).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Generates a plan deterministically from a seed: each (epoch, shard)
    /// slot faults with probability `intensity`, with a uniformly chosen
    /// kind.
    pub fn generate(seed: u64, epochs: u64, shards: u32, intensity: f64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let kinds = FaultKind::all();
        let mut events = Vec::new();
        for epoch in 0..epochs {
            for shard in 0..shards {
                if rng.gen_bool(intensity) {
                    let kind = kinds[rng.gen_range(0..kinds.len())];
                    events.push(FaultEvent { epoch, shard, kind });
                }
            }
        }
        FaultPlan { events }
    }

    /// The faults scheduled for one epoch.
    pub fn events_at(&self, epoch: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.epoch == epoch)
    }

    /// JSON form for repro artifacts.
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "events": self
                .events
                .iter()
                .map(|e| json!({"epoch": e.epoch, "shard": e.shard, "kind": e.kind.name()}))
                .collect::<Vec<_>>(),
        })
    }

    /// Parses the JSON form produced by [`FaultPlan::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed node.
    pub fn from_json(j: &serde_json::Value) -> Result<FaultPlan, String> {
        let mut events = Vec::new();
        for e in j["events"].as_array().ok_or("missing events")? {
            events.push(FaultEvent {
                epoch: e["epoch"].as_u64().ok_or("missing epoch")?,
                shard: e["shard"].as_u64().ok_or("missing shard")? as u32,
                kind: FaultKind::from_name(e["kind"].as_str().ok_or("missing kind")?)?,
            });
        }
        Ok(FaultPlan { events })
    }
}

// ---------------------------------------------------------------------------
// Simulation harness
// ---------------------------------------------------------------------------

/// Parameters of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The run's seed (recorded in artifacts; fault plans and workloads are
    /// derived from it by the caller).
    pub seed: u64,
    /// Epoch budget: the run stops (undrained) after this many epochs.
    pub max_epochs: u64,
}

impl SimConfig {
    /// A configuration with the default epoch budget.
    pub fn new(seed: u64) -> SimConfig {
        SimConfig { seed, max_epochs: 64 }
    }
}

/// The final outcome of one transaction across the whole run. Transient
/// statuses (reroutes, replay rejections of duplicated deliveries) do not
/// count: a transaction that eventually commits is `Success`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxOutcome {
    /// Committed, with its emitted events.
    Success {
        /// The event log of the committing execution.
        events: Vec<Value>,
    },
    /// Terminally failed (gas charged, state rolled back).
    Failed(String),
}

impl TxOutcome {
    /// Short label for divergence reports.
    pub fn label(&self) -> &'static str {
        match self {
            TxOutcome::Success { .. } => "success",
            TxOutcome::Failed(_) => "failed",
        }
    }
}

/// What one simulated run did and ended with.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Epochs executed.
    pub epochs: u64,
    /// Virtual time elapsed (epochs × epoch duration).
    pub sim_seconds: f64,
    /// Did the pending pool (and the retry queue) fully drain?
    pub drained: bool,
    /// Final outcome per transaction id.
    pub outcomes: BTreeMap<u64, TxOutcome>,
    /// Injected faults by kind label.
    pub injected: BTreeMap<&'static str, u64>,
    /// Recovery actions by label (`reroute-to-ds`, `backoff-repool`,
    /// `deferred-retry`).
    pub recoveries: BTreeMap<&'static str, u64>,
    /// Safety violations observed (merge conflicts, double commits). Always
    /// empty under correct signatures — any entry is a divergence.
    pub safety_violations: Vec<String>,
    /// Gas fees actually charged, per paying account. Gas metering is
    /// path-dependent (commutative execution on epoch-start snapshots can
    /// take different micro-branches than sequential execution, e.g. an
    /// `add_or_init` seeing `None` on a fresh shard), so the differential
    /// oracle compares balances *modulo* these fees.
    pub fees: BTreeMap<Address, u128>,
    /// Transaction ids in the order their *final* outcome committed — the
    /// witness serialization for Thm 4.6: the faulted sharded run must be
    /// observationally equivalent to the sequential execution of this
    /// schedule (delivery faults legitimately reorder arrival, so the
    /// original pool order is not the right reference schedule).
    pub commit_order: Vec<u64>,
    /// FNV-1a digest of the final state (see [`state_digest`]).
    pub digest: u64,
}

impl SimReport {
    /// Committed transactions.
    pub fn committed(&self) -> usize {
        self.outcomes.iter().filter(|(_, o)| matches!(o, TxOutcome::Success { .. })).count()
    }
}

/// The sentinel payload of injected panics, so the quiet hook can tell them
/// from real bugs.
struct InjectedPanic;

/// Installs (once, process-wide) a panic hook that stays silent for
/// [`InjectedPanic`] payloads and delegates everything else to the previous
/// hook. Without this every injected fault would spew a backtrace.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The fault plan's cross-shard protocol faults for one epoch, keyed by
/// target transaction id (selected deterministically from the epoch's
/// xshard packet before the stage runs).
#[derive(Debug, Default)]
struct PlanXShardFaults {
    crash: BTreeSet<u64>,
    lose_vote: BTreeSet<u64>,
    duplicate_votes: BTreeSet<u64>,
    reorder_votes: BTreeSet<u64>,
    stale_lock: BTreeSet<u64>,
}

impl XShardFaults for PlanXShardFaults {
    fn deliver_votes(
        &mut self,
        _epoch: u64,
        tx: &Transaction,
        mut votes: Vec<VoteMsg>,
    ) -> Vec<VoteMsg> {
        if self.reorder_votes.contains(&tx.id) {
            votes.reverse();
        }
        if self.duplicate_votes.contains(&tx.id) {
            let again = votes.clone();
            votes.extend(again);
        }
        if self.lose_vote.contains(&tx.id) {
            votes.pop();
        }
        votes
    }

    fn coordinator_crash(&mut self, _epoch: u64, tx: &Transaction) -> bool {
        self.crash.contains(&tx.id)
    }

    fn plant_stale_lock(&mut self, _epoch: u64, tx: &Transaction) -> bool {
        self.stale_lock.contains(&tx.id)
    }
}

/// A deterministic digest of the network's observable final state: every
/// account (balance, nonce watermark, committed-above set, contract flag)
/// and every contract storage field, in canonical `BTreeMap` order, hashed
/// with FNV-1a. Two same-seed simulation runs must produce identical
/// digests.
pub fn state_digest(net: &Network) -> u64 {
    let mut dump = String::new();
    for (addr, acc) in &net.state().accounts {
        dump.push_str(&format!(
            "A {addr} {} {} {}[",
            acc.balance,
            acc.nonces.watermark(),
            acc.is_contract
        ));
        for n in acc.nonces.committed_above() {
            dump.push_str(&format!("{n},"));
        }
        dump.push_str("];");
    }
    for (addr, storage) in &net.state().storage {
        for (field, v) in storage.fields() {
            dump.push_str(&format!("S {addr} {field} {};", scilla::wire::to_json(v)));
        }
    }
    fnv1a(dump.as_bytes())
}

/// Appends deterministic *malformed* transactions to a pool: a call to a
/// contract that does not exist, a replay-protected nonce-0 transaction,
/// and an unfunded over-sized payment. All of them must fail identically on
/// the sharded and the reference chain. Returns how many were injected.
pub fn inject_malformed(pool: &mut Vec<Transaction>, seed: u64, first_id: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6d61_6c66_6f72_6d65);
    let chaos = Address::from_index(66_000_000 + rng.gen_range(0..1_000u64));
    let ghost = Address::from_index(67_000_000 + rng.gen_range(0..1_000u64));
    let malformed = vec![
        // Unfunded sender calling a contract that was never deployed.
        Transaction::call(first_id, chaos, 1, ghost, "Nop", vec![]),
        // Nonce 0 is never usable: rejected by replay protection everywhere.
        Transaction::payment(first_id + 1, chaos, 0, ghost, 1),
        // An unfunded account trying to move a fortune.
        Transaction::payment(first_id + 2, chaos, 2, ghost, u128::MAX / 2),
    ];
    let n = malformed.len();
    pool.extend(malformed);
    n
}

/// Runs the epoch pipeline under the fault plan until the pool drains or
/// the epoch budget runs out.
///
/// Unlike [`Network::run_epoch`], merge failures do **not** panic: they are
/// recorded as safety violations in the report (and counted in telemetry),
/// so a byzantine sharding signature surfaces as a divergence instead of a
/// crash.
pub fn run_sim(
    net: &mut Network,
    pool: &mut Vec<Transaction>,
    cfg: &SimConfig,
    plan: &FaultPlan,
) -> SimReport {
    install_quiet_hook();
    let num_shards = net.config().num_shards;
    let epoch_secs = net.config().epoch_duration_secs;
    let mut report = SimReport::default();
    // Receipts carry only the tx id; remember who pays which gas price so
    // fees can be attributed (every transaction the run will ever see is in
    // the initial pool — retries and duplicates reuse the same ids).
    let payers: BTreeMap<u64, (Address, u128)> =
        pool.iter().map(|t| (t.id, (t.sender, t.gas_price))).collect();
    // Raw (tx id, succeeded) sequence of non-transient receipts, reduced to
    // the final commit order once the run ends.
    let mut seq: Vec<(u64, bool)> = Vec::new();
    // Packets awaiting redelivery: (release epoch, transactions).
    let mut delayed: Vec<(u64, Vec<Transaction>)> = Vec::new();
    let mut drops_so_far: u32 = 0;
    let mut epoch: u64 = 0;

    while (!pool.is_empty() || !delayed.is_empty()) && epoch < cfg.max_epochs {
        let mut _epoch_span = telemetry::span!("chain.sim.epoch_duration");
        _epoch_span.attr("epoch", epoch);
        // Virtual clock tick: redeliver packets whose backoff expired.
        let (due, still): (Vec<_>, Vec<_>) =
            delayed.into_iter().partition(|(release, _)| *release <= epoch);
        delayed = still;
        for (_, txs) in due {
            pool.extend(txs);
        }
        report.epochs += 1;
        report.sim_seconds += epoch_secs;
        if pool.is_empty() {
            // Nothing deliverable this epoch; the chain still makes blocks.
            net.advance_block();
            epoch += 1;
            continue;
        }

        // --- Lookup stage, then the fault plan mutates the packets.
        let mut packets = net.form_packets(pool);
        let mut gas_faulted: BTreeSet<u32> = BTreeSet::new();
        let mut panic_shards: BTreeSet<u32> = BTreeSet::new();
        let mut duplicated: Vec<Transaction> = Vec::new();
        for ev in plan.events_at(epoch) {
            if ev.kind.is_xshard() {
                continue; // handled at the cross-shard commit stage below
            }
            if ev.shard >= num_shards {
                continue; // plan generated for a wider network
            }
            let batch = &mut packets.shard_batches[ev.shard as usize];
            if batch.is_empty() && !matches!(ev.kind, FaultKind::ShardPanic) {
                continue; // nothing to fault
            }
            *report.injected.entry(ev.kind.name()).or_default() += 1;
            telemetry::registry()
                .counter(&format!("{}{}", telemetry::names::SIM_FAULT_PREFIX, ev.kind.name()))
                .inc();
            match ev.kind {
                FaultKind::ReorderPacket => batch.reverse(),
                FaultKind::GasExhaustion => {
                    gas_faulted.insert(ev.shard);
                }
                FaultKind::DuplicatePacket => duplicated.extend(batch.iter().cloned()),
                FaultKind::DropPacket => {
                    // Graceful degradation: the packet re-enters the pending
                    // pool after an exponential backoff instead of vanishing.
                    let lost = std::mem::take(batch);
                    let backoff = 1u64 << drops_so_far.min(3);
                    drops_so_far += 1;
                    delayed.push((epoch + backoff, lost));
                    *report.recoveries.entry("backoff-repool").or_default() += 1;
                    telemetry::registry().counter(telemetry::names::SIM_RECOVERY_BACKOFF).inc();
                }
                FaultKind::ShardPanic => {
                    panic_shards.insert(ev.shard);
                }
                FaultKind::CoordinatorCrash
                | FaultKind::LostVote
                | FaultKind::DuplicateVote
                | FaultKind::ReorderVotes
                | FaultKind::StaleLock => unreachable!("is_xshard filtered above"),
            }
        }

        // --- Shard stage, with panic capture.
        let mut microblocks: Vec<MicroBlock> = Vec::new();
        let shard_batches = std::mem::take(&mut packets.shard_batches);
        for (s, batch) in shard_batches.into_iter().enumerate() {
            let s = s as u32;
            let mut ecfg = net.shard_executor_config(s);
            if gas_faulted.contains(&s) {
                ecfg.gas_limit = (ecfg.gas_limit / 8).max(1);
            }
            if panic_shards.contains(&s) {
                // The thread dies mid-batch: any partial work is lost with
                // the unwind (MicroBlocks are built on epoch-start
                // snapshots, so nothing global was mutated).
                let prefix: Vec<Transaction> = batch[..batch.len() / 2].to_vec();
                let crashed = panic::catch_unwind(AssertUnwindSafe(|| {
                    let _ = execute_batch(&ecfg, net.state(), prefix);
                    panic::panic_any(InjectedPanic);
                }));
                assert!(crashed.is_err(), "injected panic must propagate");
                // Recovery: the faulted shard's whole packet is rerouted to
                // the DS committee, which executes it sequentially.
                packets.ds_batch.extend(batch);
                *report.recoveries.entry("reroute-to-ds").or_default() += 1;
                telemetry::registry().counter(telemetry::names::SIM_RECOVERY_REROUTE).inc();
            } else {
                microblocks.push(execute_batch(&ecfg, net.state(), batch));
            }
        }

        // --- DS merge; failures are recorded, not panicked on.
        if let Err(e) = net.merge_shard_deltas(&microblocks) {
            report.safety_violations.push(format!("epoch {epoch}: delta merge failed: {e:?}"));
            telemetry::registry().counter(telemetry::names::SIM_SAFETY_VIOLATION).inc();
        }

        // --- Cross-shard commit stage on the merged state, with the plan's
        // protocol faults. An xshard fault event's `shard` field selects the
        // target transaction (index into the packet, modulo its length).
        let xshard_batch = std::mem::take(&mut packets.xshard_batch);
        let mut xfaults = PlanXShardFaults::default();
        for ev in plan.events_at(epoch) {
            if !ev.kind.is_xshard() || xshard_batch.is_empty() {
                continue;
            }
            let target = xshard_batch[ev.shard as usize % xshard_batch.len()].id;
            *report.injected.entry(ev.kind.name()).or_default() += 1;
            telemetry::registry()
                .counter(&format!("{}{}", telemetry::names::SIM_FAULT_PREFIX, ev.kind.name()))
                .inc();
            match ev.kind {
                FaultKind::CoordinatorCrash => xfaults.crash.insert(target),
                FaultKind::LostVote => xfaults.lose_vote.insert(target),
                FaultKind::DuplicateVote => xfaults.duplicate_votes.insert(target),
                FaultKind::ReorderVotes => xfaults.reorder_votes.insert(target),
                FaultKind::StaleLock => xfaults.stale_lock.insert(target),
                _ => unreachable!("is_xshard filtered"),
            };
        }
        let xblock = net.execute_xshard(xshard_batch, &mut xfaults);
        for e in &xblock.errors {
            report.safety_violations.push(format!("epoch {epoch}: {e}"));
            telemetry::registry().counter(telemetry::names::SIM_SAFETY_VIOLATION).inc();
        }
        if xblock.stats.aborted > 0 {
            *report.recoveries.entry("xshard-abort-retry").or_default() +=
                xblock.stats.aborted as u64;
        }
        packets.ds_batch.extend(xblock.ds_fallback.iter().cloned());

        // --- DS execution: leftovers + xshard fallbacks + shard reroutes +
        // duplicated deliveries (the latter must all bounce off replay
        // protection).
        let mut ds_batch = std::mem::take(&mut packets.ds_batch);
        for mb in &microblocks {
            ds_batch.extend(mb.rerouted.iter().cloned());
        }
        ds_batch.extend(duplicated);
        let ds_block = match net.execute_ds(ds_batch) {
            Ok(b) => Some(b),
            Err(e) => {
                report.safety_violations.push(format!("epoch {epoch}: ds apply failed: {e:?}"));
                telemetry::registry().counter(telemetry::names::SIM_SAFETY_VIOLATION).inc();
                None
            }
        };

        // --- Accounting: final outcomes, deferred retries. Receipt order is
        // the witness serialization: shard commits, then cross-shard
        // commits, then DS commits.
        for mb in
            microblocks.iter().chain(std::iter::once(&xblock.block)).chain(ds_block.iter())
        {
            // Effect-trace sanitizer escapes are safety violations: a static
            // summary failed to contain a concrete execution.
            for v in &mb.audit_violations {
                report.safety_violations.push(format!("epoch {epoch}: audit violation: {v}"));
                telemetry::registry().counter(telemetry::names::SIM_SAFETY_VIOLATION).inc();
            }
            for r in &mb.receipts {
                record_outcome(&mut report, r, epoch);
                match &r.status {
                    TxStatus::Success => seq.push((r.tx_id, true)),
                    TxStatus::Failed(_) => seq.push((r.tx_id, false)),
                    TxStatus::Rerouted(_) => {}
                }
                if r.gas_used > 0 {
                    if let Some((sender, price)) = payers.get(&r.tx_id) {
                        *report.fees.entry(*sender).or_default() +=
                            u128::from(r.gas_used) * price;
                    }
                }
            }
            if !mb.deferred.is_empty() {
                *report.recoveries.entry("deferred-retry").or_default() +=
                    mb.deferred.len() as u64;
                pool.extend(mb.deferred.iter().cloned());
            }
        }
        net.advance_block();
        telemetry::registry().counter(telemetry::names::SIM_EPOCHS).inc();
        epoch += 1;
    }

    report.drained = pool.is_empty() && delayed.is_empty();
    // Reduce the receipt sequence to each transaction's *final* position:
    // the first `Success` wins (overriding any earlier replay rejection);
    // otherwise the first terminal failure.
    let mut pos: BTreeMap<u64, usize> = BTreeMap::new();
    let mut succeeded: BTreeSet<u64> = BTreeSet::new();
    for (i, (id, ok)) in seq.iter().enumerate() {
        if *ok {
            if succeeded.insert(*id) {
                pos.insert(*id, i);
            }
        } else {
            pos.entry(*id).or_insert(i);
        }
    }
    let mut ordered: Vec<(usize, u64)> = pos.into_iter().map(|(id, i)| (i, id)).collect();
    ordered.sort_unstable();
    report.commit_order = ordered.into_iter().map(|(_, id)| id).collect();
    report.digest = state_digest(net);
    report
}

/// Folds one receipt into the run's final-outcome map. A `Success` wins over
/// any failure; replay rejections of duplicated deliveries after a commit
/// are dropped; a *second* `Success` for the same id is a double commit —
/// a safety violation.
fn record_outcome(report: &mut SimReport, r: &Receipt, epoch: u64) {
    match &r.status {
        TxStatus::Success => {
            if matches!(report.outcomes.get(&r.tx_id), Some(TxOutcome::Success { .. })) {
                report
                    .safety_violations
                    .push(format!("epoch {epoch}: tx {} committed twice", r.tx_id));
                telemetry::registry().counter(telemetry::names::SIM_SAFETY_VIOLATION).inc();
            } else {
                report
                    .outcomes
                    .insert(r.tx_id, TxOutcome::Success { events: r.events.clone() });
            }
        }
        TxStatus::Failed(msg) => {
            if !matches!(report.outcomes.get(&r.tx_id), Some(TxOutcome::Success { .. })) {
                report.outcomes.insert(r.tx_id, TxOutcome::Failed(msg.clone()));
            }
        }
        TxStatus::Rerouted(_) => {} // transient; the DS receipt is final
    }
}

// ---------------------------------------------------------------------------
// Differential oracle
// ---------------------------------------------------------------------------

/// One observable difference between the sharded run and the reference run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// A transaction ended differently (or exists on only one side).
    Outcome {
        /// The transaction.
        tx_id: u64,
        /// Outcome label on the sharded chain (`-` when absent).
        sharded: String,
        /// Outcome label on the reference chain (`-` when absent).
        reference: String,
    },
    /// A committed transaction emitted different events.
    Events {
        /// The transaction.
        tx_id: u64,
    },
    /// An account field differs (balance, nonce state, or contract flag).
    Account {
        /// The account.
        addr: String,
        /// What differs, rendered for humans.
        detail: String,
    },
    /// A contract storage field differs.
    Storage {
        /// The contract.
        contract: String,
        /// The field name.
        field: String,
    },
    /// The sharded run recorded a safety violation (merge conflict or
    /// double commit).
    SafetyViolation(String),
    /// A run failed to drain its pool within the epoch budget.
    Liveness(String),
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Outcome { tx_id, sharded, reference } => {
                write!(f, "tx {tx_id}: outcome {sharded} (sharded) vs {reference} (reference)")
            }
            Divergence::Events { tx_id } => write!(f, "tx {tx_id}: event logs differ"),
            Divergence::Account { addr, detail } => write!(f, "account {addr}: {detail}"),
            Divergence::Storage { contract, field } => {
                write!(f, "contract {contract}: field {field} differs")
            }
            Divergence::SafetyViolation(s) => write!(f, "safety violation: {s}"),
            Divergence::Liveness(s) => write!(f, "liveness: {s}"),
        }
    }
}

/// The oracle's verdict: both runs' reports plus every divergence found.
#[derive(Debug)]
pub struct DiffReport {
    /// Differences, empty when the runs are observationally equivalent.
    pub divergences: Vec<Divergence>,
    /// The sharded (faulted) run.
    pub sharded: SimReport,
    /// The sequential reference run.
    pub reference: SimReport,
}

impl DiffReport {
    /// No divergence found?
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// The sequential reference configuration for a sharded one: a single
/// shard, signatures off, serial intra-shard execution, with the whole
/// network's gas budget so draining takes comparably many epochs.
pub fn reference_config(sharded: &ChainConfig) -> ChainConfig {
    ChainConfig {
        num_shards: 1,
        use_cosplit: false,
        parallel_intra_shard: 0,
        shard_gas_limit: sharded
            .shard_gas_limit
            .saturating_mul(u64::from(sharded.num_shards))
            .saturating_add(sharded.ds_gas_limit),
        ..sharded.clone()
    }
}

/// Runs the load on a sharded chain under the fault plan, replays it on a
/// 1-shard reference chain without faults, and compares everything
/// observable: per-transaction outcomes and event logs, every account's
/// balance/nonce state, and every contract storage field.
///
/// `build` constructs a ready world (funded accounts, deployed contracts)
/// for a given configuration — both runs must start from the same world.
pub fn differential(
    build: &dyn Fn(&ChainConfig) -> Network,
    load: &[Transaction],
    sharded_cfg: &ChainConfig,
    reference_cfg: &ChainConfig,
    cfg: &SimConfig,
    plan: &FaultPlan,
) -> DiffReport {
    let mut sharded_net = build(sharded_cfg);
    let sharded_initial = balances_of(&sharded_net);
    let mut pool = load.to_vec();
    let sharded = run_sim(&mut sharded_net, &mut pool, cfg, plan);

    let mut reference_net = build(reference_cfg);
    let reference_initial = balances_of(&reference_net);
    // Replay the sharded run's witness schedule: delivery faults (drops,
    // duplicates, reorders) legitimately change *arrival* order, and
    // overwrite-join updates are last-writer-wins, so the reference must
    // serialize in the order the sharded run actually committed — Thm 4.6
    // promises equivalence to *a* sequential execution, and the commit
    // order is that execution. Never-committed transactions keep their
    // original relative order at the end (the stable sort below).
    let order: BTreeMap<u64, usize> =
        sharded.commit_order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
    let mut ref_pool = load.to_vec();
    ref_pool.sort_by_key(|t| order.get(&t.id).copied().unwrap_or(usize::MAX));
    let reference = run_sim(&mut reference_net, &mut ref_pool, cfg, &FaultPlan::none());

    let mut divergences = Vec::new();
    for v in &sharded.safety_violations {
        divergences.push(Divergence::SafetyViolation(v.clone()));
    }
    if !sharded.drained {
        divergences.push(Divergence::Liveness(format!(
            "sharded pool not drained after {} epochs",
            sharded.epochs
        )));
    }
    if !reference.drained {
        divergences.push(Divergence::Liveness(format!(
            "reference pool not drained after {} epochs",
            reference.epochs
        )));
    }

    // Per-transaction outcomes and event logs.
    let tx_ids: BTreeSet<u64> =
        sharded.outcomes.keys().chain(reference.outcomes.keys()).copied().collect();
    for id in tx_ids {
        match (sharded.outcomes.get(&id), reference.outcomes.get(&id)) {
            (Some(s), Some(r)) => {
                if s.label() != r.label() {
                    divergences.push(Divergence::Outcome {
                        tx_id: id,
                        sharded: s.label().into(),
                        reference: r.label().into(),
                    });
                } else if let (
                    TxOutcome::Success { events: se },
                    TxOutcome::Success { events: re },
                ) = (s, r)
                {
                    if se != re {
                        divergences.push(Divergence::Events { tx_id: id });
                    }
                }
            }
            (s, r) => divergences.push(Divergence::Outcome {
                tx_id: id,
                sharded: s.map_or("-".into(), |o| o.label().into()),
                reference: r.map_or("-".into(), |o| o.label().into()),
            }),
        }
    }

    compare_states(
        Side { net: &sharded_net, fees: &sharded.fees, initial: &sharded_initial },
        Side { net: &reference_net, fees: &reference.fees, initial: &reference_initial },
        &mut divergences,
    );

    if !divergences.is_empty() {
        telemetry::registry()
            .counter(telemetry::names::SIM_DIVERGENCE)
            .add(divergences.len() as u64);
    }
    DiffReport { divergences, sharded, reference }
}

/// The snapshot of every account's balance (for pre/post comparison).
fn balances_of(net: &Network) -> BTreeMap<Address, u128> {
    net.state().accounts.iter().map(|(a, acc)| (*a, acc.balance)).collect()
}

/// One side of the state comparison: the final network plus the run's fee
/// ledger and pre-load balances.
struct Side<'a> {
    net: &'a Network,
    fees: &'a BTreeMap<Address, u128>,
    initial: &'a BTreeMap<Address, u128>,
}

/// Field-by-field comparison of two final states. Balances are compared as
/// the load's *pre-gas effect*, `final + fees − initial`: state must match
/// exactly, but gas metering is path-dependent (on both the load and the
/// setup phase), so the exact burn may legitimately differ between a
/// sharded and a sequential run of the same load.
fn compare_states(sharded: Side<'_>, reference: Side<'_>, out: &mut Vec<Divergence>) {
    let (s, r) = (sharded.net.state(), reference.net.state());
    let addrs: BTreeSet<Address> = s.accounts.keys().chain(r.accounts.keys()).copied().collect();
    for addr in addrs {
        match (s.accounts.get(&addr), r.accounts.get(&addr)) {
            (Some(a), Some(b)) => {
                // final_a + fees_a − init_a == final_b + fees_b − init_b,
                // rearranged so every term stays an unsigned addition.
                let lhs = a
                    .balance
                    .saturating_add(sharded.fees.get(&addr).copied().unwrap_or(0))
                    .saturating_add(reference.initial.get(&addr).copied().unwrap_or(0));
                let rhs = b
                    .balance
                    .saturating_add(reference.fees.get(&addr).copied().unwrap_or(0))
                    .saturating_add(sharded.initial.get(&addr).copied().unwrap_or(0));
                if lhs != rhs {
                    out.push(Divergence::Account {
                        addr: addr.to_string(),
                        detail: format!(
                            "pre-gas balance effect differs (raw {} vs {})",
                            a.balance, b.balance
                        ),
                    });
                }
                if a.nonces != b.nonces {
                    out.push(Divergence::Account {
                        addr: addr.to_string(),
                        detail: format!(
                            "nonces (watermark {} vs {})",
                            a.nonces.watermark(),
                            b.nonces.watermark()
                        ),
                    });
                }
                if a.is_contract != b.is_contract {
                    out.push(Divergence::Account {
                        addr: addr.to_string(),
                        detail: "contract flag differs".into(),
                    });
                }
            }
            (a, _) => {
                // Zero-balance, nonce-free accounts may exist on one side
                // only (e.g. created by a 0-amount credit); that is not
                // observable.
                let ghost = a.or_else(|| r.accounts.get(&addr)).expect("one side has it");
                if ghost.balance != 0 || ghost.nonces != Default::default() {
                    out.push(Divergence::Account {
                        addr: addr.to_string(),
                        detail: "account exists on one side only".into(),
                    });
                }
            }
        }
    }
    let contracts: BTreeSet<Address> = s.storage.keys().chain(r.storage.keys()).copied().collect();
    for c in contracts {
        let empty = Default::default();
        let sf = s.storage.get(&c).unwrap_or(&empty);
        let rf = r.storage.get(&c).unwrap_or(&empty);
        let fields: BTreeSet<&String> = sf.fields().keys().chain(rf.fields().keys()).collect();
        for field in fields {
            if sf.fields().get(field) != rf.fields().get(field) {
                out.push(Divergence::Storage {
                    contract: c.to_string(),
                    field: field.clone(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Repro artifacts & trace minimization
// ---------------------------------------------------------------------------

/// Everything needed to replay a divergence: the seed, the network shape,
/// the fault plan, and the (minimized) transaction trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReproArtifact {
    /// The run's seed.
    pub seed: u64,
    /// Shards on the sharded side.
    pub num_shards: u32,
    /// The fault plan in force.
    pub plan: FaultPlan,
    /// The transaction trace that still diverges.
    pub trace: Vec<Transaction>,
    /// Human-readable divergence descriptions.
    pub divergences: Vec<String>,
}

impl ReproArtifact {
    /// Builds an artifact from a diff report.
    pub fn from_diff(
        diff: &DiffReport,
        cfg: &SimConfig,
        num_shards: u32,
        plan: &FaultPlan,
        trace: Vec<Transaction>,
    ) -> ReproArtifact {
        ReproArtifact {
            seed: cfg.seed,
            num_shards,
            plan: plan.clone(),
            trace,
            divergences: diff.divergences.iter().map(|d| d.to_string()).collect(),
        }
    }

    /// JSON form.
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "seed": self.seed,
            "num_shards": self.num_shards,
            "plan": self.plan.to_json(),
            "trace": self.trace.iter().map(Transaction::to_json).collect::<Vec<_>>(),
            "divergences": self.divergences.clone(),
        })
    }

    /// Parses the JSON form produced by [`ReproArtifact::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed node.
    pub fn from_json(j: &serde_json::Value) -> Result<ReproArtifact, String> {
        Ok(ReproArtifact {
            seed: j["seed"].as_u64().ok_or("missing seed")?,
            num_shards: j["num_shards"].as_u64().ok_or("missing num_shards")? as u32,
            plan: FaultPlan::from_json(&j["plan"])?,
            trace: j["trace"]
                .as_array()
                .ok_or("missing trace")?
                .iter()
                .map(Transaction::from_json)
                .collect::<Result<Vec<_>, String>>()?,
            divergences: j["divergences"]
                .as_array()
                .ok_or("missing divergences")?
                .iter()
                .map(|d| d.as_str().map(String::from).ok_or_else(|| "bad divergence".into()))
                .collect::<Result<Vec<_>, String>>()?,
        })
    }

    /// Writes the artifact as pretty-stable JSON.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string())
    }

    /// Reads an artifact back.
    ///
    /// # Errors
    ///
    /// Reports I/O and parse failures as strings.
    pub fn read(path: &std::path::Path) -> Result<ReproArtifact, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let j: serde_json::Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
        ReproArtifact::from_json(&j)
    }
}

/// Greedy ddmin-lite: repeatedly removes chunks of the trace (halving the
/// chunk size) while `still_diverges` keeps returning `true`, within a
/// budget of oracle invocations. The result is a 1-minimal-ish trace that
/// still reproduces the divergence.
pub fn minimize_trace<F>(trace: &[Transaction], mut still_diverges: F, budget: usize) -> Vec<Transaction>
where
    F: FnMut(&[Transaction]) -> bool,
{
    let mut current = trace.to_vec();
    if current.is_empty() {
        return current;
    }
    let mut runs = 0usize;
    let mut chunk = current.len().div_ceil(2);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.len() && runs < budget {
            let mut candidate = current.clone();
            let end = (i + chunk).min(candidate.len());
            candidate.drain(i..end);
            runs += 1;
            if !candidate.is_empty() && still_diverges(&candidate) {
                current = candidate;
                removed_any = true;
                // keep i: the next chunk shifted into this position
            } else {
                i += chunk;
            }
        }
        if runs >= budget || (chunk == 1 && !removed_any) {
            break;
        }
        if chunk > 1 {
            chunk = (chunk / 2).max(1);
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ChainConfig;

    #[test]
    fn fault_plans_are_seeded_and_roundtrip() {
        let a = FaultPlan::generate(42, 8, 4, 0.3);
        let b = FaultPlan::generate(42, 8, 4, 0.3);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, FaultPlan::generate(43, 8, 4, 0.3));
        assert!(!a.events.is_empty());
        let back = FaultPlan::from_json(&a.to_json()).unwrap();
        assert_eq!(a, back);
        let partial: serde_json::Value =
            serde_json::from_str(r#"{"events": [{"epoch": 1}]}"#).unwrap();
        assert!(FaultPlan::from_json(&partial).is_err());
    }

    #[test]
    fn payments_survive_every_fault_kind() {
        // One seeded world, every fault kind in one plan; all payments must
        // still commit exactly once, and two identical runs must agree
        // bit-for-bit.
        let build = || {
            let mut net = Network::new(ChainConfig::small(3, true));
            for i in 0..12u64 {
                net.fund_account(Address::from_index(i), 1_000_000);
            }
            net
        };
        let load: Vec<Transaction> = (0..24u64)
            .map(|i| {
                Transaction::payment(
                    i + 1,
                    Address::from_index(i % 12),
                    i / 12 + 1,
                    Address::from_index((i + 1) % 12),
                    100,
                )
            })
            .collect();
        // Shard 1 is the busiest for these users (6 of 12 live there), so
        // gas exhaustion at epoch 0 leaves it deferred work to drop at
        // epoch 1.
        let plan = FaultPlan {
            events: vec![
                FaultEvent { epoch: 0, shard: 1, kind: FaultKind::GasExhaustion },
                FaultEvent { epoch: 0, shard: 2, kind: FaultKind::DuplicatePacket },
                FaultEvent { epoch: 0, shard: 2, kind: FaultKind::ReorderPacket },
                FaultEvent { epoch: 0, shard: 0, kind: FaultKind::ShardPanic },
                FaultEvent { epoch: 1, shard: 1, kind: FaultKind::DropPacket },
            ],
        };
        let cfg = SimConfig::new(7);
        let run = |plan: &FaultPlan| {
            let mut net = build();
            let mut pool = load.clone();
            let r = run_sim(&mut net, &mut pool, &cfg, plan);
            (r, state_digest(&net))
        };
        let (r1, d1) = run(&plan);
        let (r2, d2) = run(&plan);
        assert_eq!(d1, d2, "same seed + plan ⇒ identical digests");
        assert_eq!(r1.outcomes, r2.outcomes);
        assert_eq!(r1.epochs, r2.epochs);
        assert!(r1.drained, "pool must drain despite faults");
        assert!(r1.safety_violations.is_empty(), "{:?}", r1.safety_violations);
        assert_eq!(r1.committed(), 24, "every payment commits exactly once");
        assert_eq!(r1.injected.len(), 5, "every fault kind injected: {:?}", r1.injected);
        // The fault-free run ends in the same state (payments commute).
        let (r0, d0) = run(&FaultPlan::none());
        assert_eq!(d0, d1, "faults must not change the final state");
        assert_eq!(r0.outcomes, r1.outcomes);
    }

    #[test]
    fn malformed_txs_fail_without_state_damage() {
        let mut net = Network::new(ChainConfig::small(2, true));
        net.fund_account(Address::from_index(1), 500_000);
        let mut pool = Vec::new();
        let n = inject_malformed(&mut pool, 99, 1_000);
        assert_eq!(pool.len(), n);
        let before = state_digest(&net);
        let r = run_sim(&mut net, &mut pool, &SimConfig::new(99), &FaultPlan::none());
        assert!(r.drained);
        assert_eq!(r.committed(), 0);
        assert_eq!(r.outcomes.len(), n);
        assert_eq!(state_digest(&net), before, "malformed txs must not change state");
    }

    #[test]
    fn minimizer_shrinks_to_the_culprit() {
        let trace: Vec<Transaction> = (0..40u64)
            .map(|i| {
                Transaction::payment(i, Address::from_index(i), 1, Address::from_index(i + 1), 1)
            })
            .collect();
        // The "divergence" is: the trace still contains tx id 23.
        let minimal = minimize_trace(&trace, |t| t.iter().any(|tx| tx.id == 23), 200);
        assert_eq!(minimal.len(), 1);
        assert_eq!(minimal[0].id, 23);
    }

    #[test]
    fn artifacts_roundtrip_through_json_files() {
        let plan = FaultPlan::generate(5, 4, 2, 0.5);
        let art = ReproArtifact {
            seed: 5,
            num_shards: 4,
            plan,
            trace: vec![Transaction::payment(
                1,
                Address::from_index(1),
                1,
                Address::from_index(2),
                10,
            )],
            divergences: vec!["tx 1: outcome success vs failed".into()],
        };
        let dir = std::env::temp_dir().join(format!("cosplit_sim_art_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repro.json");
        art.write(&path).unwrap();
        let back = ReproArtifact::read(&path).unwrap();
        assert_eq!(art, back);
        std::fs::remove_dir_all(&dir).ok();
    }
}
