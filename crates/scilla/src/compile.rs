//! Transition compilation: one-time lowering of transition ASTs into compact
//! pre-resolved instruction sequences.
//!
//! The definitional interpreter ([`crate::interpreter`]) re-resolves every
//! name against a cons-list environment and re-allocates an environment node
//! per binding, per call. This module removes that per-call work by doing the
//! resolution **once**: each transition lowers to a [`CompiledTransition`]
//! whose locals are frame *slots* (plain vector indices), whose library
//! references are pre-looked-up constants, whose builtins are pre-bound
//! function pointers ([`crate::builtins::bind_builtin`]), and whose field
//! names are pre-interned [`Sym`]s driving the `*_sym` fast path of
//! [`crate::state::StateStore`].
//!
//! Semantics are bit-identical to the AST walker, by construction:
//!
//! * [`CStmt`]/[`CExpr`] mirror [`Stmt`]/[`Expr`] one-to-one, with every gas
//!   charge at the same point in the same order (`COST_STMT` per statement,
//!   `COST_EXPR` per expression node, the per-op extras where the walker
//!   charges them);
//! * tracer hooks fire at the same points with the same payloads, so audited
//!   (traced) execution works compiled too;
//! * anything the compiler cannot resolve statically — an unbound name, an
//!   unknown builtin — makes the *whole transition* fall back to the AST
//!   walker ([`TransitionCode::Ast`]), never to divergent behaviour.
//!
//! Closures are the one deliberate seam: `fun`/`tfun` literals capture their
//! free variables into a real [`Env`] and application re-enters the AST
//! evaluator, so higher-order library code behaves exactly as before (and
//! bodies are `Arc`-shared instead of deep-cloned per closure creation).
//!
//! The differential property tests in `tests/compile_props.rs` check the
//! equivalence on random contracts; `COSPLIT_COMPILE=off` forces the AST
//! walker at runtime for A/B measurement.

use crate::ast::*;
use crate::builtins::{bind_builtin, empty_map, BuiltinFn};
use crate::error::ExecError;
use crate::gas::{self, GasMeter};
use crate::intern::Sym;
use crate::interpreter::{
    apply, eval_expr_inner, flatten_messages, parse_out_msg, TransitionContext, TransitionOutcome,
};
use crate::span::Span;
use crate::state::StateStore;
use crate::trace::EffectTracer;
use crate::types::Type;
use crate::value::{Closure, Env, TypeClosure, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Is compiled execution enabled? Defaults to on; set `COSPLIT_COMPILE=off`
/// (or `0`) to force every transition through the AST walker — the knob the
/// hot-path experiment uses for its A/B comparison.
pub fn enabled() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var("COSPLIT_COMPILE").map(|v| v != "off" && v != "0").unwrap_or(true)
    })
}

/// The lowered form of one transition: compiled code, or a marker that this
/// transition must run on the AST walker.
#[derive(Debug)]
pub enum TransitionCode {
    /// Fully pre-resolved; executed by [`run_compiled`](crate::compile).
    Compiled(CompiledTransition),
    /// Some name could not be resolved statically; the interpreter's AST
    /// walker (the differential reference) runs this transition instead.
    Ast,
}

/// A value source: a local frame slot or a compile-time constant (library
/// definitions, pre-evaluated once per contract).
#[derive(Debug, Clone)]
pub(crate) enum Operand {
    /// Read the slot written by an earlier statement/binder.
    Slot(u32),
    /// A pre-resolved library value (clone is an `Arc` bump for all
    /// structured values).
    Const(Value),
}

/// A message entry payload, pre-resolved.
#[derive(Debug, Clone)]
pub(crate) enum CMsgValue {
    Var(Operand),
    Lit(Value),
}

/// Compiled pattern: binders write straight into frame slots.
#[derive(Debug, Clone)]
pub(crate) enum CPattern {
    Wildcard,
    Binder(u32),
    Constructor(Sym, Vec<CPattern>),
}

/// Compiled expression — mirrors [`Expr`] node-for-node so gas parity is
/// structural, not incidental.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    /// A pre-converted literal (cloned per evaluation, like the walker).
    Lit(Value),
    /// `Emp kt vt` — allocates a fresh empty map per evaluation so value
    /// sharing (and CoW-break telemetry) matches the walker exactly.
    Emp,
    Var(Operand),
    Message(Vec<(Sym, CMsgValue)>),
    Constr { ctor: Sym, args: Vec<Operand> },
    Builtin { op: Sym, f: BuiltinFn, cost: u64, args: Vec<Operand> },
    Let { dst: u32, rhs: Box<CExpr>, body: Box<CExpr> },
    Fun { param: Ident, param_type: Type, body: Arc<Expr>, captures: Vec<(Sym, Operand)> },
    App { func: Operand, args: Vec<Operand> },
    Match { scrutinee: Operand, clauses: Vec<(CPattern, CExpr)> },
    TFun { tvar: String, body: Arc<Expr>, captures: Vec<(Sym, Operand)> },
    Inst { target: Operand, count: usize },
}

/// Compiled statement — mirrors [`Stmt`] one-to-one. Spans are kept for the
/// tracer hooks so audited footprints are identical.
#[derive(Debug, Clone)]
pub(crate) enum CStmt {
    Load { dst: u32, field: Sym, span: Span },
    Store { field: Sym, rhs: Operand, span: Span },
    Bind { dst: u32, rhs: CExpr },
    MapUpdate { map: Sym, keys: Vec<Operand>, rhs: Operand, span: Span },
    MapGet { dst: u32, map: Sym, keys: Vec<Operand>, span: Span },
    MapExists { dst: u32, map: Sym, keys: Vec<Operand>, span: Span },
    MapDelete { map: Sym, keys: Vec<Operand>, span: Span },
    ReadBlockchain { dst: u32 },
    Match { scrutinee: Operand, clauses: Vec<(CPattern, Vec<CStmt>)>, span: Span },
    Accept,
    Send { msgs: Operand, span: Span },
    Event { event: Operand },
    Throw { exception: Option<Operand> },
}

/// One transition, lowered: a flat local frame plus pre-resolved code.
#[derive(Debug)]
pub struct CompiledTransition {
    name: Sym,
    /// Number of local slots (contract params, implicit context, transition
    /// params, and every binder anywhere in the body).
    frame_size: usize,
    /// Declared contract parameters, in declaration order.
    contract_params: Vec<(Sym, u32)>,
    /// Slots of `_sender`, `_origin`, `_amount`, `_this_address`.
    ctx_slots: [u32; 4],
    /// Declared transition parameters, in declaration order.
    params: Vec<(Sym, u32)>,
    body: Vec<CStmt>,
}

// ------------------------------------------------------------------ compile

/// Lexical compile-time scope: a stack of (name, slot) with innermost-last,
/// mirroring the walker's cons-list environment shadowing exactly.
struct Scope<'c> {
    lib_env: &'c Env,
    stack: Vec<(Sym, u32)>,
    frame_size: usize,
}

impl Scope<'_> {
    fn bind(&mut self, sym: Sym) -> u32 {
        let slot = self.frame_size as u32;
        self.frame_size += 1;
        self.stack.push((sym, slot));
        slot
    }

    fn mark(&self) -> usize {
        self.stack.len()
    }

    fn pop_to(&mut self, mark: usize) {
        self.stack.truncate(mark);
    }

    /// Innermost local binding, else a library constant, else unresolvable
    /// (which falls the transition back to the AST walker).
    fn resolve(&self, sym: Sym) -> Result<Operand, Sym> {
        if let Some((_, slot)) = self.stack.iter().rev().find(|(s, _)| *s == sym) {
            return Ok(Operand::Slot(*slot));
        }
        match self.lib_env.lookup_sym(sym) {
            Some(v) => Ok(Operand::Const(v.clone())),
            None => Err(sym),
        }
    }

    fn ident(&self, id: &Ident) -> Result<Operand, Sym> {
        self.resolve(id.sym)
    }
}

/// Lowers one transition. Any statically unresolvable name yields
/// [`TransitionCode::Ast`] — the walker remains the behaviour of record for
/// code the compiler cannot prove it understands.
pub fn compile_transition(contract: &Contract, lib_env: &Env, t: &Transition) -> TransitionCode {
    let mut scope = Scope { lib_env, stack: Vec::new(), frame_size: 0 };
    let contract_params: Vec<(Sym, u32)> =
        contract.params.iter().map(|p| (p.name.sym, scope.bind(p.name.sym))).collect();
    let ctx_slots = [
        scope.bind(Sym::SENDER),
        scope.bind(Sym::ORIGIN),
        scope.bind(Sym::AMOUNT),
        scope.bind(Sym::THIS_ADDRESS),
    ];
    let params: Vec<(Sym, u32)> =
        t.params.iter().map(|p| (p.name.sym, scope.bind(p.name.sym))).collect();
    match compile_stmts(&mut scope, &t.body) {
        Ok(body) => {
            if telemetry::enabled() {
                telemetry::counter!("scilla.compile.transitions").inc();
            }
            TransitionCode::Compiled(CompiledTransition {
                name: t.name.sym,
                frame_size: scope.frame_size,
                contract_params,
                ctx_slots,
                params,
                body,
            })
        }
        Err(_unresolved) => {
            if telemetry::enabled() {
                telemetry::counter!("scilla.compile.fallbacks").inc();
            }
            TransitionCode::Ast
        }
    }
}

fn compile_stmts(scope: &mut Scope, stmts: &[Stmt]) -> Result<Vec<CStmt>, Sym> {
    stmts.iter().map(|s| compile_stmt(scope, s)).collect()
}

fn compile_stmt(scope: &mut Scope, s: &Stmt) -> Result<CStmt, Sym> {
    Ok(match s {
        Stmt::Load { lhs, field } => {
            let (field, span) = (field.sym, s.span());
            CStmt::Load { dst: scope.bind(lhs.sym), field, span }
        }
        Stmt::Store { field, rhs } => {
            CStmt::Store { field: field.sym, rhs: scope.ident(rhs)?, span: s.span() }
        }
        Stmt::Bind { lhs, rhs } => {
            let rhs = compile_expr(scope, rhs)?;
            CStmt::Bind { dst: scope.bind(lhs.sym), rhs }
        }
        Stmt::MapUpdate { map, keys, rhs } => CStmt::MapUpdate {
            map: map.sym,
            keys: compile_idents(scope, keys)?,
            rhs: scope.ident(rhs)?,
            span: s.span(),
        },
        Stmt::MapGet { lhs, map, keys } => {
            let keys = compile_idents(scope, keys)?;
            CStmt::MapGet { dst: scope.bind(lhs.sym), map: map.sym, keys, span: s.span() }
        }
        Stmt::MapExists { lhs, map, keys } => {
            let keys = compile_idents(scope, keys)?;
            CStmt::MapExists { dst: scope.bind(lhs.sym), map: map.sym, keys, span: s.span() }
        }
        Stmt::MapDelete { map, keys } => CStmt::MapDelete {
            map: map.sym,
            keys: compile_idents(scope, keys)?,
            span: s.span(),
        },
        Stmt::ReadBlockchain { lhs, .. } => CStmt::ReadBlockchain { dst: scope.bind(lhs.sym) },
        Stmt::Match { scrutinee, clauses, span } => {
            let scrutinee = scope.ident(scrutinee)?;
            let mut cc = Vec::with_capacity(clauses.len());
            for (pat, body) in clauses {
                let mark = scope.mark();
                let cpat = compile_pattern(scope, pat);
                let cbody = compile_stmts(scope, body);
                scope.pop_to(mark);
                cc.push((cpat, cbody?));
            }
            CStmt::Match { scrutinee, clauses: cc, span: *span }
        }
        Stmt::Accept(_) => CStmt::Accept,
        Stmt::Send { msgs } => CStmt::Send { msgs: scope.ident(msgs)?, span: s.span() },
        Stmt::Event { event } => CStmt::Event { event: scope.ident(event)? },
        Stmt::Throw { exception, .. } => {
            CStmt::Throw { exception: exception.as_ref().map(|e| scope.ident(e)).transpose()? }
        }
    })
}

fn compile_idents(scope: &Scope, ids: &[Ident]) -> Result<Vec<Operand>, Sym> {
    ids.iter().map(|i| scope.ident(i)).collect()
}

fn compile_pattern(scope: &mut Scope, pat: &Pattern) -> CPattern {
    match pat {
        Pattern::Wildcard(_) => CPattern::Wildcard,
        Pattern::Binder(i) => CPattern::Binder(scope.bind(i.sym)),
        Pattern::Constructor(c, subs) => {
            CPattern::Constructor(c.sym, subs.iter().map(|p| compile_pattern(scope, p)).collect())
        }
    }
}

fn compile_expr(scope: &mut Scope, e: &Expr) -> Result<CExpr, Sym> {
    Ok(match e {
        Expr::Lit(Literal::EmpMap(..), _) => CExpr::Emp,
        Expr::Lit(l, _) => CExpr::Lit(literal_value(l)),
        Expr::Var(i) => CExpr::Var(scope.ident(i)?),
        Expr::Message(entries, _) => {
            let mut out = Vec::with_capacity(entries.len());
            for en in entries {
                let v = match &en.value {
                    MsgValue::Var(i) => CMsgValue::Var(scope.ident(i)?),
                    MsgValue::Lit(l) => CMsgValue::Lit(literal_value(l)),
                };
                out.push((crate::intern::intern(&en.key), v));
            }
            CExpr::Message(out)
        }
        Expr::Constr { name, args, .. } => {
            CExpr::Constr { ctor: name.sym, args: compile_idents(scope, args)? }
        }
        Expr::Builtin { op, args } => {
            let f = bind_builtin(&op.name).ok_or(op.sym)?;
            let cost = if op.name.ends_with("hash") { gas::COST_HASH } else { gas::COST_BUILTIN };
            CExpr::Builtin { op: op.sym, f, cost, args: compile_idents(scope, args)? }
        }
        Expr::Let { bound, rhs, body, .. } => {
            let rhs = compile_expr(scope, rhs)?;
            let mark = scope.mark();
            let dst = scope.bind(bound.sym);
            let body = compile_expr(scope, body);
            scope.pop_to(mark);
            CExpr::Let { dst, rhs: Box::new(rhs), body: Box::new(body?) }
        }
        Expr::Fun { param, param_type, body } => CExpr::Fun {
            param: param.clone(),
            param_type: param_type.clone(),
            body: Arc::new((**body).clone()),
            captures: captures_of(scope, e)?,
        },
        Expr::App { func, args } => {
            CExpr::App { func: scope.ident(func)?, args: compile_idents(scope, args)? }
        }
        Expr::Match { scrutinee, clauses, .. } => {
            let scrutinee = scope.ident(scrutinee)?;
            let mut cc = Vec::with_capacity(clauses.len());
            for (pat, body) in clauses {
                let mark = scope.mark();
                let cpat = compile_pattern(scope, pat);
                let cbody = compile_expr(scope, body);
                scope.pop_to(mark);
                cc.push((cpat, cbody?));
            }
            CExpr::Match { scrutinee, clauses: cc }
        }
        Expr::TFun { tvar, body, .. } => CExpr::TFun {
            tvar: tvar.clone(),
            body: Arc::new((**body).clone()),
            captures: captures_of(scope, e)?,
        },
        Expr::Inst { target, type_args } => {
            CExpr::Inst { target: scope.ident(target)?, count: type_args.len() }
        }
    })
}

/// The capture list for a closure literal: every free variable of the whole
/// `fun`/`tfun` expression, resolved in the current scope. Re-binding only
/// the free variables (rather than snapshotting the entire environment) is
/// observationally identical — the body can mention nothing else — and keeps
/// closure creation O(free vars).
fn captures_of(scope: &Scope, e: &Expr) -> Result<Vec<(Sym, Operand)>, Sym> {
    let mut bound = Vec::new();
    let mut free = Vec::new();
    free_vars(e, &mut bound, &mut free);
    free.into_iter().map(|sym| Ok((sym, scope.resolve(sym)?))).collect()
}

fn free_vars(e: &Expr, bound: &mut Vec<Sym>, out: &mut Vec<Sym>) {
    fn var(sym: Sym, bound: &[Sym], out: &mut Vec<Sym>) {
        if !bound.contains(&sym) && !out.contains(&sym) {
            out.push(sym);
        }
    }
    match e {
        Expr::Lit(..) => {}
        Expr::Var(i) => var(i.sym, bound, out),
        Expr::Message(entries, _) => {
            for en in entries {
                if let MsgValue::Var(i) = &en.value {
                    var(i.sym, bound, out);
                }
            }
        }
        Expr::Constr { args, .. } | Expr::Builtin { args, .. } => {
            for a in args {
                var(a.sym, bound, out);
            }
        }
        Expr::Let { bound: b, rhs, body, .. } => {
            free_vars(rhs, bound, out);
            bound.push(b.sym);
            free_vars(body, bound, out);
            bound.pop();
        }
        Expr::Fun { param, body, .. } => {
            bound.push(param.sym);
            free_vars(body, bound, out);
            bound.pop();
        }
        Expr::App { func, args } => {
            var(func.sym, bound, out);
            for a in args {
                var(a.sym, bound, out);
            }
        }
        Expr::Match { scrutinee, clauses, .. } => {
            var(scrutinee.sym, bound, out);
            for (pat, body) in clauses {
                let mark = bound.len();
                bound.extend(pat.binders().iter().map(|i| i.sym));
                free_vars(body, bound, out);
                bound.truncate(mark);
            }
        }
        Expr::TFun { body, .. } => free_vars(body, bound, out),
        Expr::Inst { target, .. } => var(target.sym, bound, out),
    }
}

fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(w, v) => Value::Int(*w, *v),
        Literal::Uint(w, v) => Value::Uint(*w, *v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::ByStr(bs) => Value::ByStr(bs.clone()),
        Literal::BNum(n) => Value::BNum(*n),
        Literal::EmpMap(..) => empty_map(),
    }
}

// ---------------------------------------------------------------- execution

/// Executes a compiled transition. Entered from
/// [`crate::interpreter::CompiledContract`] after the transition lookup and
/// `COST_TX_BASE` charge, mirroring the walker from that point on.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_compiled(
    ct: &CompiledTransition,
    store: &mut dyn StateStore,
    args: &[(String, Value)],
    contract_params: &[(String, Value)],
    ctx: &TransitionContext,
    gas: &mut GasMeter,
    tracer: Option<&mut EffectTracer>,
) -> Result<TransitionOutcome, ExecError> {
    if telemetry::enabled() {
        telemetry::counter!("scilla.compile.runs").inc();
    }
    // Frames are taken from (not borrowed out of) a per-thread pool so a
    // re-entrant dispatch — a contract message fanning back into
    // `run_compiled` — simply allocates a fresh one instead of aliasing.
    let mut frame: Vec<Option<Value>> = FRAME_POOL.with(|p| std::mem::take(&mut *p.borrow_mut()));
    frame.clear();
    frame.resize(ct.frame_size, None);
    for (sym, slot) in &ct.contract_params {
        let want = sym.as_str();
        let v = contract_params
            .iter()
            .find(|(n, _)| n.as_str() == want)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| {
                ExecError::BadInvocation(format!("missing contract parameter '{sym}'"))
            })?;
        frame[*slot as usize] = Some(v);
    }
    let [s_sender, s_origin, s_amount, s_this] = ct.ctx_slots;
    frame[s_sender as usize] = Some(Value::address(ctx.sender));
    frame[s_origin as usize] = Some(Value::address(ctx.origin));
    frame[s_amount as usize] = Some(Value::Uint(128, ctx.amount));
    frame[s_this as usize] = Some(Value::address(ctx.this_address));
    for (sym, slot) in &ct.params {
        let want = sym.as_str();
        let v = args
            .iter()
            .find(|(n, _)| n.as_str() == want)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| {
                ExecError::BadInvocation(format!(
                    "missing argument '{sym}' for transition '{}'",
                    ct.name
                ))
            })?;
        frame[*slot as usize] = Some(v);
    }
    let mut run = CRun { store, ctx, outcome: TransitionOutcome::default(), tracer };
    let res = run.run_stmts(&mut frame, &ct.body, gas);
    // Hand the (cleared) frame back for the next call on this thread; on
    // the error path the values are dropped with the frame as before.
    frame.clear();
    FRAME_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.capacity() < frame.capacity() {
            *pool = std::mem::take(&mut frame);
        }
    });
    res?;
    let mut outcome = run.outcome;
    outcome.gas_used = gas.used();
    Ok(outcome)
}

thread_local! {
    /// Scratch slot-frame reused by [`run_compiled`] to avoid a
    /// malloc/free per transition call.
    static FRAME_POOL: std::cell::RefCell<Vec<Option<Value>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

struct CRun<'a> {
    store: &'a mut dyn StateStore,
    ctx: &'a TransitionContext,
    outcome: TransitionOutcome,
    tracer: Option<&'a mut EffectTracer>,
}

fn fetch(frame: &[Option<Value>], op: &Operand) -> Result<Value, ExecError> {
    match op {
        Operand::Slot(i) => frame[*i as usize]
            .clone()
            .ok_or_else(|| ExecError::Internal("read of unwritten slot (compiler bug)".into())),
        Operand::Const(v) => Ok(v.clone()),
    }
}

fn fetch_all(frame: &[Option<Value>], ops: &[Operand]) -> Result<Vec<Value>, ExecError> {
    ops.iter().map(|op| fetch(frame, op)).collect()
}

/// Pattern match writing binders straight into the frame. Binder slots are
/// unique per clause, so a partial match that fails midway leaves only dead
/// slots behind (nothing in scope can read them).
fn match_into(pat: &CPattern, v: &Value, frame: &mut [Option<Value>]) -> bool {
    match pat {
        CPattern::Wildcard => true,
        CPattern::Binder(slot) => {
            frame[*slot as usize] = Some(v.clone());
            true
        }
        CPattern::Constructor(c, subs) => match v {
            Value::Adt { ctor, args } if ctor == c && args.len() == subs.len() => {
                subs.iter().zip(args).all(|(p, a)| match_into(p, a, frame))
            }
            _ => false,
        },
    }
}

impl CRun<'_> {
    fn run_stmts(
        &mut self,
        frame: &mut Vec<Option<Value>>,
        stmts: &[CStmt],
        gas: &mut GasMeter,
    ) -> Result<(), ExecError> {
        for s in stmts {
            self.run_stmt(frame, s, gas)?;
        }
        Ok(())
    }

    fn run_stmt(
        &mut self,
        frame: &mut Vec<Option<Value>>,
        s: &CStmt,
        gas: &mut GasMeter,
    ) -> Result<(), ExecError> {
        gas.charge(gas::COST_STMT)?;
        match s {
            CStmt::Load { dst, field, span } => {
                gas.charge(gas::COST_FIELD)?;
                let v = self.store.load_sym(*field).ok_or_else(|| {
                    ExecError::Internal(format!("field '{field}' missing from state"))
                })?;
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.record_read(field.as_str(), Vec::new(), *span);
                }
                frame[*dst as usize] = Some(v);
            }
            CStmt::Store { field, rhs, span } => {
                gas.charge(gas::COST_FIELD)?;
                let v = fetch(frame, rhs)?;
                match self.tracer.as_deref_mut() {
                    Some(t) => {
                        let prior = self.store.load_sym(*field);
                        self.store.store_sym(*field, v.clone());
                        t.record_write(field.as_str(), Vec::new(), prior, Some(v), *span);
                    }
                    None => self.store.store_sym(*field, v),
                }
            }
            CStmt::Bind { dst, rhs } => {
                let v = self.eval(frame, rhs, gas)?;
                frame[*dst as usize] = Some(v);
            }
            CStmt::MapUpdate { map, keys, rhs, span } => {
                gas.charge(gas::COST_MAP_KEY * keys.len() as u64)?;
                let ks = fetch_all(frame, keys)?;
                let v = fetch(frame, rhs)?;
                match self.tracer.as_deref_mut() {
                    Some(t) => {
                        let prior = self.store.map_get_sym(*map, &ks);
                        self.store.map_update_sym(*map, &ks, v.clone());
                        t.record_write(map.as_str(), ks, prior, Some(v), *span);
                    }
                    None => self.store.map_update_sym(*map, &ks, v),
                }
            }
            CStmt::MapGet { dst, map, keys, span } => {
                gas.charge(gas::COST_MAP_KEY * keys.len() as u64)?;
                let ks = fetch_all(frame, keys)?;
                let v = match self.store.map_get_sym(*map, &ks) {
                    Some(v) => Value::some(v),
                    None => Value::none(),
                };
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.record_read(map.as_str(), ks, *span);
                }
                frame[*dst as usize] = Some(v);
            }
            CStmt::MapExists { dst, map, keys, span } => {
                gas.charge(gas::COST_MAP_KEY * keys.len() as u64)?;
                let ks = fetch_all(frame, keys)?;
                let b = self.store.map_exists_sym(*map, &ks);
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.record_read(map.as_str(), ks, *span);
                }
                frame[*dst as usize] = Some(Value::bool(b));
            }
            CStmt::MapDelete { map, keys, span } => {
                gas.charge(gas::COST_MAP_KEY * keys.len() as u64)?;
                let ks = fetch_all(frame, keys)?;
                match self.tracer.as_deref_mut() {
                    Some(t) => {
                        let prior = self.store.map_get_sym(*map, &ks);
                        self.store.map_delete_sym(*map, &ks);
                        t.record_write(map.as_str(), ks, prior, None, *span);
                    }
                    None => self.store.map_delete_sym(*map, &ks),
                }
            }
            CStmt::ReadBlockchain { dst } => {
                gas.charge(gas::COST_FIELD)?;
                frame[*dst as usize] = Some(Value::BNum(self.ctx.block_number));
            }
            CStmt::Match { scrutinee, clauses, span } => {
                let v = fetch(frame, scrutinee)?;
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.record_cond(v.clone(), *span);
                }
                for (pat, body) in clauses {
                    if match_into(pat, &v, frame) {
                        return self.run_stmts(frame, body, gas);
                    }
                }
                return Err(ExecError::MatchFailure(format!("no clause matched {v}")));
            }
            CStmt::Accept => {
                self.outcome.accepted = true;
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.record_accept();
                }
            }
            CStmt::Send { msgs, span } => {
                let v = fetch(frame, msgs)?;
                for m in flatten_messages(&v)? {
                    gas.charge(gas::COST_MESSAGE)?;
                    let om = parse_out_msg(&m)?;
                    if let Some(t) = self.tracer.as_deref_mut() {
                        t.record_send(om.recipient, om.amount, &om.tag, *span);
                    }
                    self.outcome.messages.push(om);
                }
            }
            CStmt::Event { event } => {
                gas.charge(gas::COST_MESSAGE)?;
                let v = fetch(frame, event)?;
                if !matches!(v, Value::Msg(_)) {
                    return Err(ExecError::Internal("event payload must be a message".into()));
                }
                self.outcome.events.push(v);
            }
            CStmt::Throw { exception } => {
                let detail = match exception {
                    Some(e) => fetch(frame, e)?.to_string(),
                    None => "unspecified".into(),
                };
                return Err(ExecError::Thrown(detail));
            }
        }
        Ok(())
    }

    fn eval(
        &mut self,
        frame: &mut Vec<Option<Value>>,
        e: &CExpr,
        gas: &mut GasMeter,
    ) -> Result<Value, ExecError> {
        gas.charge(gas::COST_EXPR)?;
        match e {
            CExpr::Lit(v) => Ok(v.clone()),
            CExpr::Emp => Ok(empty_map()),
            CExpr::Var(op) => fetch(frame, op),
            CExpr::Message(entries) => {
                let mut m = BTreeMap::new();
                for (k, mv) in entries {
                    let v = match mv {
                        CMsgValue::Var(op) => fetch(frame, op)?,
                        CMsgValue::Lit(v) => v.clone(),
                    };
                    m.insert(*k, v);
                }
                Ok(Value::Msg(m))
            }
            CExpr::Constr { ctor, args } => {
                Ok(Value::Adt { ctor: *ctor, args: fetch_all(frame, args)? })
            }
            CExpr::Builtin { op, f, cost, args } => {
                gas.charge(*cost)?;
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.record_builtin(op.as_str());
                }
                let vals = fetch_all(frame, args)?;
                f(&vals)
            }
            CExpr::Let { dst, rhs, body } => {
                let v = self.eval(frame, rhs, gas)?;
                frame[*dst as usize] = Some(v);
                self.eval(frame, body, gas)
            }
            CExpr::Fun { param, param_type, body, captures } => {
                let env = self.capture_env(frame, captures)?;
                Ok(Value::Clo(Arc::new(Closure {
                    param: param.clone(),
                    param_type: param_type.clone(),
                    body: Arc::clone(body),
                    env,
                })))
            }
            CExpr::App { func, args } => {
                let mut f = fetch(frame, func)?;
                for a in args {
                    let arg = fetch(frame, a)?;
                    f = apply(f, arg, gas, self.tracer.as_deref_mut())?;
                }
                Ok(f)
            }
            CExpr::Match { scrutinee, clauses } => {
                let v = fetch(frame, scrutinee)?;
                for (pat, body) in clauses {
                    if match_into(pat, &v, frame) {
                        return self.eval(frame, body, gas);
                    }
                }
                Err(ExecError::MatchFailure(format!("no clause matched {v}")))
            }
            CExpr::TFun { tvar, body, captures } => {
                let env = self.capture_env(frame, captures)?;
                Ok(Value::TClo(Arc::new(TypeClosure {
                    tvar: tvar.clone(),
                    body: Arc::clone(body),
                    env,
                })))
            }
            CExpr::Inst { target, count } => {
                let mut v = fetch(frame, target)?;
                for _ in 0..*count {
                    match v {
                        Value::TClo(tc) => {
                            v = eval_expr_inner(&tc.env, &tc.body, gas, self.tracer.as_deref_mut())?
                        }
                        other => {
                            return Err(ExecError::Internal(format!(
                                "cannot type-instantiate non-tfun value {other}"
                            )))
                        }
                    }
                }
                Ok(v)
            }
        }
    }

    fn capture_env(
        &self,
        frame: &[Option<Value>],
        captures: &[(Sym, Operand)],
    ) -> Result<Env, ExecError> {
        let mut env = Env::new();
        for (sym, op) in captures {
            env = env.bind(*sym, fetch(frame, op)?);
        }
        Ok(env)
    }
}
