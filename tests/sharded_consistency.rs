//! The headline soundness property (DESIGN.md invariant 3): for random
//! ERC20 workloads, executing through N parallel shards + delta merge is
//! indistinguishable from a serial execution — the paper's
//! concurrent-revisions consistency.

use cosplit::analysis::signature::WeakReads;
use cosplit::chain::address::Address;
use cosplit::chain::network::{ChainConfig, Network};
use cosplit::chain::tx::Transaction;
use cosplit::scilla;
use proptest::prelude::*;
use scilla::state::StateStore;
use scilla::value::Value;

const SHARDED: &[&str] =
    &["Mint", "Burn", "Transfer", "TransferFrom", "IncreaseAllowance", "DecreaseAllowance"];

fn contract() -> Address {
    Address::from_index(1_000_000)
}

fn owner() -> Address {
    Address::from_index(999_999)
}

fn setup(num_shards: u32, users: u64) -> Network {
    let mut net = Network::new(ChainConfig::evaluation(num_shards, true));
    net.fund_account(owner(), u128::MAX / 8);
    for i in 0..users {
        net.fund_account(Address::from_index(i), 1_000_000_000);
    }
    let src = scilla::corpus::get("FungibleToken").unwrap().source;
    let params = vec![
        ("contract_owner".to_string(), owner().to_value()),
        ("name".to_string(), Value::Str("P".into())),
        ("symbol".to_string(), Value::Str("P".into())),
        ("init_supply".to_string(), Value::Uint(128, 0)),
    ];
    net.deploy(contract(), src, params, Some((SHARDED, WeakReads::AcceptAll))).unwrap();
    net
}

/// One workload step: (actor, action). Amounts are small enough to always
/// succeed against the seeded balances, so the final state is
/// order-independent and must match exactly across shard counts.
#[derive(Debug, Clone)]
enum Step {
    Transfer { from: u64, to: u64, amount: u128 },
    Mint { to: u64, amount: u128 },
    IncreaseAllowance { from: u64, spender: u64, amount: u128 },
    Burn { from: u64, amount: u128 },
}

fn step(users: u64) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..users, 0..users, 1u128..5).prop_map(|(from, to, amount)| Step::Transfer {
            from,
            to,
            amount
        }),
        (0..users, 1u128..50).prop_map(|(to, amount)| Step::Mint { to, amount }),
        (0..users, 0..users, 1u128..20).prop_map(|(from, spender, amount)| {
            Step::IncreaseAllowance { from, spender, amount }
        }),
        (0..users, 1u128..3).prop_map(|(from, amount)| Step::Burn { from, amount }),
    ]
}

fn run(num_shards: u32, users: u64, steps: &[Step]) -> Network {
    let mut net = setup(num_shards, users);
    // Seed generous balances so every step succeeds.
    let mut pool: Vec<Transaction> = (0..users)
        .map(|i| {
            Transaction::call(
                i + 1,
                owner(),
                i + 1,
                contract(),
                "Mint",
                vec![
                    ("to".into(), Address::from_index(i).to_value()),
                    ("amount".into(), Value::Uint(128, 1_000_000)),
                ],
            )
        })
        .collect();
    while !pool.is_empty() {
        net.run_epoch(&mut pool);
    }

    let mut id = 10_000;
    let mut nonces = vec![0u64; users as usize];
    let mut owner_nonce = users;
    let mut pool: Vec<Transaction> = steps
        .iter()
        .filter_map(|s| {
            id += 1;
            match s {
                Step::Transfer { from, to, amount } if from != to => {
                    nonces[*from as usize] += 1;
                    Some(Transaction::call(
                        id,
                        Address::from_index(*from),
                        nonces[*from as usize],
                        contract(),
                        "Transfer",
                        vec![
                            ("to".into(), Address::from_index(*to).to_value()),
                            ("amount".into(), Value::Uint(128, *amount)),
                        ],
                    ))
                }
                Step::Transfer { .. } => None, // self transfers tested elsewhere
                Step::Mint { to, amount } => {
                    owner_nonce += 1;
                    Some(Transaction::call(
                        id,
                        owner(),
                        owner_nonce,
                        contract(),
                        "Mint",
                        vec![
                            ("to".into(), Address::from_index(*to).to_value()),
                            ("amount".into(), Value::Uint(128, *amount)),
                        ],
                    ))
                }
                Step::IncreaseAllowance { from, spender, amount } => {
                    nonces[*from as usize] += 1;
                    Some(Transaction::call(
                        id,
                        Address::from_index(*from),
                        nonces[*from as usize],
                        contract(),
                        "IncreaseAllowance",
                        vec![
                            ("spender".into(), Address::from_index(*spender).to_value()),
                            ("amount".into(), Value::Uint(128, *amount)),
                        ],
                    ))
                }
                Step::Burn { from, amount } => {
                    nonces[*from as usize] += 1;
                    Some(Transaction::call(
                        id,
                        Address::from_index(*from),
                        nonces[*from as usize],
                        contract(),
                        "Burn",
                        vec![("amount".into(), Value::Uint(128, *amount))],
                    ))
                }
            }
        })
        .collect();
    let mut guard = 0;
    while !pool.is_empty() {
        let r = net.run_epoch(&mut pool);
        assert_eq!(r.failed, 0, "workload steps are always-succeeding by construction");
        guard += 1;
        assert!(guard < 100, "did not converge");
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_state_matches_serial_state(
        steps in prop::collection::vec(step(12), 1..60),
        shards in 2u32..6,
    ) {
        let users = 12;
        let serial = run(1, users, &steps);
        let sharded = run(shards, users, &steps);

        let read = |net: &Network, field: &str| net.storage_of(&contract()).unwrap().load(field);
        prop_assert_eq!(read(&serial, "total_supply"), read(&sharded, "total_supply"));
        prop_assert_eq!(read(&serial, "balances"), read(&sharded, "balances"));
        prop_assert_eq!(read(&serial, "allowances"), read(&sharded, "allowances"));
    }
}
