//! Regression tests for the contract lint pass, centred on the
//! `write-never-read-back` rule's contract-global read collection.
//!
//! A field counts as "read back" when *any* transition of the contract
//! consumes its value, in *any* reading position: an explicit load or map
//! get, a condition scrutinee, an outgoing message's recipient/amount, or a
//! contribution flowing into some field's written value. The tests below pin
//! both the source-level behaviour and the summary-level collection (by
//! stripping the explicit `Read` effects and checking the contribution
//! positions alone keep a field clean).

use cosplit_analysis::audit::lint_contract;
use cosplit_analysis::effects::Effect;
use cosplit_analysis::solver::AnalyzedContract;
use scilla::typechecker::CheckedModule;

fn check(src: &str) -> (CheckedModule, AnalyzedContract) {
    let module = scilla::parser::parse_module(src).expect("parse");
    let checked = scilla::typechecker::typecheck(module).expect("typecheck");
    let analyzed = AnalyzedContract::analyze(&checked);
    (checked, analyzed)
}

fn rules<'a>(
    findings: &'a [cosplit_analysis::audit::LintFinding],
    rule: &str,
) -> Vec<&'a cosplit_analysis::audit::LintFinding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

/// A field written by one transition and loaded by another must not be
/// flagged, regardless of which transition does the reading.
#[test]
fn cross_transition_read_clears_the_field() {
    let src = r#"
contract Rated (owner : ByStr20)
field rate : Uint128 = Uint128 5
field total : Uint128 = Uint128 0
transition SetRate (r : Uint128)
  ok = builtin eq _sender owner;
  match ok with
  | True => rate := r
  | False => err = {_exception : "NotOwner"}; throw err
  end
end
transition Accumulate (amount : Uint128)
  r <- rate;
  fee = builtin mul amount r;
  t <- total;
  nt = builtin add t fee;
  total := nt
end
"#;
    let (checked, analyzed) = check(src);
    let findings = lint_contract(&checked, &analyzed);
    assert!(
        rules(&findings, "write-never-read-back").is_empty(),
        "cross-transition read must clear 'rate': {findings:?}"
    );
}

/// A genuinely write-only field (stored and deleted, never consumed) is a
/// true positive.
#[test]
fn write_only_field_is_flagged() {
    let src = r#"
contract Registry (admin : ByStr20)
field entries : Map String Bool = Emp String Bool
transition Add (key : String)
  ok = builtin eq _sender admin;
  match ok with
  | True => t = True; entries[key] := t
  | False => err = {_exception : "NotAdmin"}; throw err
  end
end
transition Remove (key : String)
  ok = builtin eq _sender admin;
  match ok with
  | True => delete entries[key]
  | False => err = {_exception : "NotAdmin"}; throw err
  end
end
"#;
    let (checked, analyzed) = check(src);
    let findings = lint_contract(&checked, &analyzed);
    let hits = rules(&findings, "write-never-read-back");
    assert_eq!(hits.len(), 1, "write-only map must be flagged: {findings:?}");
    assert_eq!(hits[0].field.as_deref(), Some("entries"));
}

/// The read collection must not depend on the summariser pairing every
/// consuming position with an explicit `Read` effect: a field that survives
/// only inside another transition's condition / send / write contributions
/// still counts as read. We strip the `Read` effects from the analysed
/// summaries and lint the remainder.
#[test]
fn contribution_positions_count_without_explicit_reads() {
    let src = r#"
library TolledLib
let nil_msg = Nil {Message}
let one_msg = fun (m : Message) => Cons {Message} m nil_msg

contract Tolled (owner : ByStr20)
field fee : Uint128 = Uint128 3
field sink : ByStr20 = owner
field collected : Uint128 = Uint128 0
transition SetFee (f : Uint128)
  ok = builtin eq _sender owner;
  match ok with
  | True => fee := f
  | False => err = {_exception : "NotOwner"}; throw err
  end
end
transition SetSink (s : ByStr20)
  ok = builtin eq _sender owner;
  match ok with
  | True => sink := s
  | False => err = {_exception : "NotOwner"}; throw err
  end
end
transition Collect ()
  accept;
  f <- fee;
  c <- collected;
  nc = builtin add c f;
  collected := nc
end
transition Flush ()
  s <- sink;
  c <- collected;
  z = Uint128 0;
  collected := z;
  msg = {_tag : "AddFunds"; _recipient : s; _amount : c};
  msgs = one_msg msg;
  send msgs
end
"#;
    let (checked, mut analyzed) = check(src);

    // Sanity: with full summaries nothing is flagged — `fee` flows into the
    // write of `collected`, `sink` into a message recipient, `collected`
    // into a message amount.
    let findings = lint_contract(&checked, &analyzed);
    assert!(
        rules(&findings, "write-never-read-back").is_empty(),
        "all three fields are consumed somewhere: {findings:?}"
    );

    // Strip every explicit Read: the contribution positions alone must keep
    // the verdict — this is the contract-global collection the rule
    // documents, and the regression the per-transition variant would fail.
    for s in &mut analyzed.summaries {
        s.effects.retain(|e| !matches!(e, Effect::Read(_)));
    }
    let findings = lint_contract(&checked, &analyzed);
    assert!(
        rules(&findings, "write-never-read-back").is_empty(),
        "condition/send/write contributions must count as reads: {findings:?}"
    );
}

/// A pure self-incremented counter counts as read back through its own RMW
/// contribution (`x := x + 1` observes the previous write of `x`) — the
/// documented boundary of the rule.
#[test]
fn rmw_self_contribution_is_a_read_back() {
    let src = r#"
contract Counter ()
field count : Uint128 = Uint128 0
transition Bump ()
  c <- count;
  one = Uint128 1;
  nc = builtin add c one;
  count := nc
end
"#;
    let (checked, mut analyzed) = check(src);
    for s in &mut analyzed.summaries {
        s.effects.retain(|e| !matches!(e, Effect::Read(_)));
    }
    let findings = lint_contract(&checked, &analyzed);
    assert!(
        rules(&findings, "write-never-read-back").is_empty(),
        "RMW self-contribution must clear 'count': {findings:?}"
    );
}
