//! Plain-text table rendering for the `paper` binary.

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a crude horizontal bar for terminal "figures".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max <= 0.0 { 0 } else { ((value / max) * width as f64).round() as usize };
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10);
    }
}
