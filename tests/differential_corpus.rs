//! Differential oracle over the whole Fig. 14 workload corpus: every
//! scenario runs on a 4-shard CoSplit chain under several seeded fault
//! plans, is replayed on a fault-free 1-shard reference chain, and the two
//! final worlds must be observationally identical — per-transaction
//! outcomes, event logs, balances, nonce state, and contract storage.
//! On top of the equivalence check, native tokens must be conserved modulo
//! gas burn even with faults injected.

use cosplit::chain::network::{ChainConfig, Network};
use cosplit::chain::sim::{
    differential, reference_config, run_sim, FaultPlan, SimConfig,
};
use cosplit::workloads::runner::world_builder;
use cosplit::workloads::scenarios::{build, Kind};
use cosplit::workloads::seeds;

const MASTER_SEED: u64 = 4242;

fn total_native(net: &Network) -> u128 {
    net.state().accounts.values().map(|a| a.balance).sum()
}

/// Four distinct generated plans plus the fault-free control.
fn plans(shards: u32) -> Vec<FaultPlan> {
    let mut plans = vec![FaultPlan::none()];
    for i in 0..4u64 {
        plans.push(FaultPlan::generate(
            seeds::derive(MASTER_SEED, &format!("corpus-plan-{i}")),
            8,
            shards,
            0.3,
        ));
    }
    plans
}

#[test]
fn every_corpus_workload_matches_the_sequential_reference() {
    let sharded_cfg = ChainConfig::small(4, true);
    let reference_cfg = reference_config(&sharded_cfg);
    let plans = plans(sharded_cfg.num_shards);
    assert!(plans.iter().skip(1).all(|p| !p.events.is_empty()), "plans must inject faults");

    for kind in Kind::all() {
        let scenario =
            build(kind, 24, 160, seeds::derive(MASTER_SEED, &format!("corpus-{kind:?}")));
        let builder = world_builder(&scenario);
        for (i, plan) in plans.iter().enumerate() {
            let cfg = SimConfig::new(MASTER_SEED);
            let diff =
                differential(&builder, &scenario.load, &sharded_cfg, &reference_cfg, &cfg, plan);
            assert!(
                diff.is_clean(),
                "{kind:?} diverged under plan {i}: {:?}",
                diff.divergences
            );
            assert_eq!(
                diff.sharded.committed(),
                scenario.load.len(),
                "{kind:?} plan {i}: corpus loads always succeed"
            );
        }
    }
}

#[test]
fn faulted_runs_conserve_native_tokens_modulo_gas() {
    let sharded_cfg = ChainConfig::small(4, true);
    for kind in Kind::all() {
        let scenario =
            build(kind, 24, 160, seeds::derive(MASTER_SEED, &format!("conserve-{kind:?}")));
        let plan = FaultPlan::generate(
            seeds::derive(MASTER_SEED, "conserve-plan"),
            8,
            sharded_cfg.num_shards,
            0.4,
        );
        let mut net = world_builder(&scenario)(&sharded_cfg);
        let before = total_native(&net);
        let mut pool = scenario.load.clone();
        let report = run_sim(&mut net, &mut pool, &SimConfig::new(MASTER_SEED), &plan);
        assert!(report.drained, "{kind:?}: pool drains despite faults");
        assert!(report.safety_violations.is_empty(), "{kind:?}: {:?}", report.safety_violations);

        let after = total_native(&net);
        assert!(after <= before, "{kind:?}: faults must never mint tokens");
        // The only sink is gas: the burn is bounded by every load
        // transaction exhausting its whole budget (duplicated deliveries
        // never commit twice, so they charge nothing extra).
        let max_burn: u128 =
            scenario.load.iter().map(|t| u128::from(t.gas_limit) * t.gas_price).sum();
        assert!(
            before - after <= max_burn,
            "{kind:?}: burned {} > worst-case gas {max_burn}",
            before - after
        );
    }
}
