//! A crowdfunding campaign's full life cycle on the sharded chain: donate
//! in parallel across shards, miss the goal, and claim refunds — exercising
//! `accept`, funds-carrying messages, blockchain reads (deadlines), and the
//! DS-committee path.
//!
//! ```text
//! cargo run --example crowdfunding_campaign
//! ```

use cosplit::analysis::signature::WeakReads;
use cosplit::chain::address::Address;
use cosplit::chain::network::{ChainConfig, Network};
use cosplit::chain::tx::Transaction;
use cosplit::scilla;
use scilla::value::Value;

fn main() {
    let mut net = Network::new(ChainConfig::evaluation(3, true));
    let owner = Address::from_index(500);
    let contract = Address::from_index(501);
    let donors: Vec<Address> = (0..12).map(Address::from_index).collect();

    net.fund_account(owner, 10_000_000);
    for d in &donors {
        net.fund_account(*d, 10_000_000);
    }

    // The campaign runs until block 3 and needs 1M to succeed.
    let source = scilla::corpus::get("Crowdfunding").unwrap().source;
    let params = vec![
        ("campaign_owner".to_string(), owner.to_value()),
        ("max_block".to_string(), Value::BNum(3)),
        ("goal".to_string(), Value::Uint(128, 1_000_000)),
    ];
    net.deploy(contract, source, params, Some((&["Donate", "ClaimBack"], WeakReads::AcceptAll)))
        .expect("deploys");
    println!("campaign deployed at {contract} (goal 1,000,000, deadline block 3)");

    // Epoch 1–2: everyone donates 1,000 — far from the goal.
    let mut id = 0;
    let mut pool: Vec<Transaction> = donors
        .iter()
        .map(|d| {
            id += 1;
            Transaction::call(id, *d, 1, contract, "Donate", vec![]).with_amount(1_000)
        })
        .collect();
    let report = net.run_epoch(&mut pool);
    println!(
        "epoch 1: {} donations committed across committees {:?}",
        report.committed,
        report
            .per_committee
            .iter()
            .filter(|(_, n, _)| *n > 0)
            .map(|(r, n, _)| format!("{r:?}×{n}"))
            .collect::<Vec<_>>()
    );
    let contract_balance = net.state().balance(&contract);
    println!("contract now holds {contract_balance} in escrow");

    // Let the deadline pass (each epoch advances the block number).
    net.run_epoch(&mut Vec::new());
    net.run_epoch(&mut Vec::new());

    // The goal was missed: donors claim their money back.
    let mut pool: Vec<Transaction> = donors
        .iter()
        .map(|d| {
            id += 1;
            Transaction::call(id, *d, 2, contract, "ClaimBack", vec![])
        })
        .collect();
    let report = net.run_epoch(&mut pool);
    println!("deadline passed; {} refunds processed", report.committed);
    println!("contract balance after refunds: {}", net.state().balance(&contract));

    let donor_balance = net.state().balance(&donors[0]);
    println!("donor 0 balance restored to ≈{donor_balance} (minus gas)");
    assert_eq!(net.state().balance(&contract), 0);
}
