//! Batch execution of transactions by a shard or by the DS committee.
//!
//! A shard executes its packet sequentially against the epoch-start state
//! snapshot, producing a `MicroBlock` with a [`StateDelta`] (paper Fig. 10).
//! Each transaction runs atomically through a journaled store: on failure
//! its writes are undone, gas is still charged. The DS committee reuses the
//! same executor after the shard deltas merge, with chained contract calls
//! enabled.
//!
//! With `parallel_workers ≥ 2` a shard instead schedules its packet over the
//! per-contract [`ConflictMatrix`]: a pairwise dependency test (the matrix
//! for same-contract calls, account overlap otherwise) builds a DAG, and a
//! work-stealing pool of persistent `std::thread::scope` workers drains its
//! dependency-counted ready queue — no layer barriers, so a long dependency
//! chain no longer gates the independent transactions beside it. Every
//! finished transaction publishes its per-transaction [`StateDelta`] to a
//! shared commit log; a worker claiming new work catches up on peer commits
//! in one batched [`StateDelta::compose_ref`] application per drain. The
//! scheduler only omits an edge when the static analysis proves the pair
//! touches disjoint state — a claimed transaction can therefore only ever
//! observe its dependency ancestors (anything else in the log is provably
//! non-interfering) — so receipts, deltas, and digests stay bit-identical to
//! the serial order regardless of steal order.

use crate::address::Address;
use crate::delta::{
    apply_int_delta, compute_int_delta, read_component, Component, ContractDelta, StateDelta,
};
use crate::dispatch::{component_shard, compose_chain, Assignment};
use cosplit_analysis::callgraph::Recipient;
use crate::tx::{Transaction, TxKind};
use cosplit_analysis::audit::{audit_placement, audit_transition, AuditViolation, ViolationKind};
use cosplit_analysis::conflict::{concrete_pair_conflicts, keyed_accesses, ConflictMatrix};
use cosplit_analysis::signature::Join;
use scilla::builtins::uint_max;
use scilla::error::ExecError;
use scilla::gas::{GasMeter, COST_TX_BASE};
use scilla::intern::Sym;
use scilla::interpreter::{OutMsg, TransitionContext};
use scilla::span::Span;
use scilla::state::{CowState, StateStore};
use scilla::trace::{DynamicFootprint, EffectTracer};
use scilla::value::Value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::state::{DeployedContract, GlobalState};

/// Execution parameters for one committee in one epoch.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Which committee this is.
    pub role: Assignment,
    /// Total number of transaction shards in the network.
    pub num_shards: u32,
    /// The committee's per-epoch gas budget.
    pub gas_limit: u64,
    /// Current block number.
    pub block_number: u64,
    /// Honour sharding signatures when computing deltas.
    pub use_cosplit: bool,
    /// Enforce the §6 overflow guard on `IntMerge` components.
    pub overflow_guard: bool,
    /// Allow messages to other contracts (DS committee only).
    pub allow_contract_msgs: bool,
    /// Run every transition with the effect tracer and audit its concrete
    /// footprint against the static summary and sharding discipline.
    pub audit: bool,
    /// Worker threads for conflict-matrix-scheduled intra-shard execution.
    /// `0` or `1` keeps the serial path. The parallel scheduler only engages
    /// on shard committees without chained contract calls and without the
    /// overflow guard (the guard reads the cumulative working state, which
    /// is inherently order-dependent across a layer).
    pub parallel_workers: usize,
    /// Follow statically-validated cross-contract send hops in place
    /// instead of rerouting them to the DS committee: a message whose
    /// recipient matches the classified call site that produced it
    /// ([`cosplit_analysis::callgraph`]) executes here, because dispatch
    /// already locked the whole composed chain. Unvalidated hops still
    /// reroute. Also arms the composed-chain containment cross-check in
    /// audit mode.
    pub compose_calls: bool,
}

/// Outcome of one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxStatus {
    /// Committed with its state changes.
    Success,
    /// Committed, state rolled back, gas charged.
    Failed(String),
    /// Re-routed to the DS committee with no state change and no gas
    /// charged: either the §6 overflow guard fired, or the transaction
    /// turned out not to be single-contract (its message chain reaches
    /// another contract, paper §4.3).
    Rerouted(RerouteCause),
}

/// Why a shard handed a transaction to the DS committee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RerouteCause {
    /// The §6 overflow guard on an `IntMerge` component fired.
    OverflowGuard,
    /// The transaction sent a message to another contract.
    CrossContract,
}

/// Internal: distinguishes interpreter failures from reroute conditions.
enum CallError {
    Exec(ExecError),
    CrossContract,
}

impl From<ExecError> for CallError {
    fn from(e: ExecError) -> Self {
        CallError::Exec(e)
    }
}

/// A per-transaction receipt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// The transaction.
    pub tx_id: u64,
    /// What happened.
    pub status: TxStatus,
    /// Gas consumed.
    pub gas_used: u64,
    /// Events emitted (empty unless the transaction succeeded).
    pub events: Vec<Value>,
}

/// What one committee produced in one epoch (paper Fig. 10: MicroBlock +
/// StateDelta).
#[derive(Debug, Clone)]
pub struct MicroBlock {
    /// The producing committee.
    pub role: Assignment,
    /// Receipts for processed transactions, in order.
    pub receipts: Vec<Receipt>,
    /// Transactions that did not fit the gas budget (stay in the pool).
    pub deferred: Vec<Transaction>,
    /// Transactions the overflow guard rerouted to the DS committee.
    pub rerouted: Vec<Transaction>,
    /// The state delta.
    pub delta: StateDelta,
    /// Total gas consumed.
    pub gas_used: u64,
    /// Containment breaches found by the effect-trace auditor (empty unless
    /// `ExecutorConfig::audit` is set; non-empty means a static summary
    /// under-approximated a real execution).
    pub audit_violations: Vec<AuditViolation>,
}

impl MicroBlock {
    /// Number of successfully committed transactions.
    pub fn committed(&self) -> usize {
        self.receipts.iter().filter(|r| r.status == TxStatus::Success).count()
    }
}

/// Executes a batch of transactions for one committee against a state
/// snapshot.
pub fn execute_batch(
    cfg: &ExecutorConfig,
    snapshot: &GlobalState,
    txs: Vec<Transaction>,
) -> MicroBlock {
    let mut _span = telemetry::span!("chain.executor.batch_duration");
    _span.attr("role", crate::network::assignment_label(cfg.role));
    _span.attr("txs", txs.len());
    let mut exec = Executor::new(cfg, snapshot);
    let parallel = cfg.parallel_workers >= 2
        && !cfg.overflow_guard
        && !cfg.allow_contract_msgs
        // Composed chains reach other contracts mid-transaction; the
        // pairwise dependency test is per-contract, so keep them serial.
        && !cfg.compose_calls
        && matches!(cfg.role, Assignment::Shard(_));
    if parallel {
        exec.run_parallel(txs);
    } else {
        let mut over_budget = false;
        for tx in txs {
            if over_budget || exec.gas_used + tx.gas_limit > cfg.gas_limit {
                over_budget = true;
                telemetry::trace::instant_with(telemetry::names::TX_DEFER, |a| {
                    a.push(("tx", tx.id.to_string()));
                    a.push(("why", "gas_budget".to_string()));
                });
                exec.deferred.push(tx);
                continue;
            }
            exec.process(tx);
        }
    }
    let mb = exec.finish();
    record_batch_metrics(&mb);
    mb
}

/// Records per-batch outcome counters and the delta-size histogram
/// (`chain.executor.*`).
fn record_batch_metrics(mb: &MicroBlock) {
    if !telemetry::enabled() {
        return;
    }
    let mut success = 0u64;
    let mut failed = 0u64;
    let mut rerouted = 0u64;
    for r in &mb.receipts {
        match &r.status {
            TxStatus::Success => success += 1,
            TxStatus::Failed(_) => failed += 1,
            TxStatus::Rerouted(cause) => {
                rerouted += 1;
                match cause {
                    RerouteCause::OverflowGuard => {
                        telemetry::counter!("chain.executor.reroute.overflow_guard").inc()
                    }
                    RerouteCause::CrossContract => {
                        telemetry::counter!("chain.executor.reroute.cross_contract").inc()
                    }
                }
            }
        }
    }
    telemetry::counter!("chain.executor.tx_status.success").add(success);
    telemetry::counter!("chain.executor.tx_status.failed").add(failed);
    telemetry::counter!("chain.executor.tx_status.rerouted").add(rerouted);
    telemetry::counter!("chain.executor.deferred").add(mb.deferred.len() as u64);
    telemetry::counter!("chain.executor.gas_used").add(mb.gas_used);
    telemetry::histogram!("chain.executor.delta_components", telemetry::SIZE_BUCKETS)
        .record(mb.delta.changed_components() as u64);
}

/// Per-shard balance ledger with slice limits (paper §4.2.2: "splitting a
/// user's balance across shards, with a larger fraction given to the shard
/// handling money transfers from that user").
struct Ledger<'a> {
    snapshot: &'a GlobalState,
    role: Assignment,
    num_shards: u32,
    /// Gross debits, checked against the slice.
    spent: BTreeMap<Address, u128>,
    /// Net changes, reported in the state delta.
    deltas: BTreeMap<Address, i128>,
    /// Prior value of every entry mutated since the last checkpoint, so a
    /// per-transaction rollback is O(mutations) instead of cloning both maps.
    log: Vec<LedgerUndo>,
}

/// One `Ledger` mutation's undo record (`None` = the entry did not exist).
enum LedgerUndo {
    Spent(Address, Option<u128>),
    Delta(Address, Option<i128>),
}

impl Ledger<'_> {
    fn slice(&self, addr: &Address) -> u128 {
        let base = self.snapshot.balance(addr);
        match self.role {
            // The DS committee sees everything; a cross-shard coordinator
            // holds exclusive locks on the accounts its footprint pins, so
            // its prepare also works the full balance.
            Assignment::Ds | Assignment::XShard => base,
            Assignment::Shard(s) => {
                let n = self.num_shards as u128;
                if self.snapshot.is_contract(addr) {
                    // A contract's funds move only in its home shard
                    // (`ContractShard` constraint; placement-aware, so a
                    // co-located family's funds follow its dispatch shard).
                    if self.snapshot.home_shard_of(addr, self.num_shards) == s { base } else { 0 }
                } else {
                    // The away-slice is base/(4n); the home shard keeps the
                    // rest.
                    let away = base / (4 * n);
                    if addr.home_shard(self.num_shards) == s {
                        base - away * (n - 1)
                    } else {
                        away
                    }
                }
            }
        }
    }

    fn debit(&mut self, addr: Address, amount: u128) -> Result<(), String> {
        let prior = self.spent.get(&addr).copied();
        let spent = prior.unwrap_or(0);
        if spent + amount > self.slice(&addr) {
            return Err(format!("insufficient balance slice for {addr}"));
        }
        self.log.push(LedgerUndo::Spent(addr, prior));
        self.spent.insert(addr, spent + amount);
        self.log.push(LedgerUndo::Delta(addr, self.deltas.get(&addr).copied()));
        *self.deltas.entry(addr).or_insert(0) -= amount as i128;
        Ok(())
    }

    fn credit(&mut self, addr: Address, amount: u128) {
        self.log.push(LedgerUndo::Delta(addr, self.deltas.get(&addr).copied()));
        *self.deltas.entry(addr).or_insert(0) += amount as i128;
    }

    fn undo(&mut self, checkpoint: usize) {
        while self.log.len() > checkpoint {
            match self.log.pop().expect("len checked") {
                LedgerUndo::Spent(a, Some(v)) => {
                    self.spent.insert(a, v);
                }
                LedgerUndo::Spent(a, None) => {
                    self.spent.remove(&a);
                }
                LedgerUndo::Delta(a, Some(v)) => {
                    self.deltas.insert(a, v);
                }
                LedgerUndo::Delta(a, None) => {
                    self.deltas.remove(&a);
                }
            }
        }
    }

    fn checkpoint(&self) -> usize {
        self.log.len()
    }
}

/// A shard's working view of one contract's storage, with touched
/// components. The view is a copy-on-write overlay over the epoch-start
/// snapshot: creating it is O(1) and writes land in the overlay, so an
/// epoch's cost is O(touched state), never O(total state).
struct ShardStorage {
    state: CowState,
    touched: BTreeSet<Component>,
    /// Each touched component's value when this executor first wrote it
    /// (recorded at journal commit). A layer worker starts from a clone of
    /// the scheduler's working state, so its priors are the layer-start
    /// values its delta is computed against.
    priors: BTreeMap<Component, Option<Value>>,
}

/// The frame a message was sent from, as [`Executor::deliver`] needs it to
/// validate the hop against the sender's classified call sites.
struct CallerFrame<'a> {
    contract: Address,
    transition: &'a str,
    args: &'a [(String, Value)],
    sender: Address,
}

/// One audited transition invocation, retained for the pairwise conflict
/// cross-check (populated only when `ExecutorConfig::audit` is set).
struct TracedCall {
    tx_id: u64,
    contract: Address,
    sender: Address,
    origin: Address,
    amount: u128,
    args: Vec<(String, Value)>,
    footprint: DynamicFootprint,
}

/// The per-transaction outputs of one scheduled execution, keyed by packet
/// position so layers can re-assemble them in serial order.
struct TxSlot {
    receipt: Receipt,
    violations: Vec<AuditViolation>,
    traced: Vec<TracedCall>,
    rerouted: Option<Transaction>,
}

struct Executor<'a> {
    cfg: &'a ExecutorConfig,
    snapshot: &'a GlobalState,
    storages: BTreeMap<Address, ShardStorage>,
    balance: Ledger<'a>,
    nonce_committed: BTreeMap<Address, Vec<u64>>,
    receipts: Vec<Receipt>,
    deferred: Vec<Transaction>,
    rerouted: Vec<Transaction>,
    gas_used: u64,
    violations: Vec<AuditViolation>,
    traced: Vec<TracedCall>,
    /// Id of the transaction currently in `process` (tags traced calls).
    current_tx: u64,
    /// On wave workers only: `(sender, committed-nonce count at wave start)`
    /// for every sender that committed a nonce this wave, in commit order,
    /// so the wave yield reports nonces in O(wave) instead of O(accounts).
    yield_nonce_marks: Vec<(Address, usize)>,
    /// Set on forked pool workers; gates `yield_nonce_marks` tracking.
    track_yield_marks: bool,
    /// Worker label for the per-transaction trace span, set by the parallel
    /// scheduler on its pool workers; `None` on the serial path and the
    /// scheduler itself.
    trace_ctx: Option<usize>,
    /// Wall-clock spent inside this scheduler's parallel regions, and the
    /// per-region maximum of the participants' thread-CPU busy time (the
    /// region's critical path on an unconstrained host). Reported through
    /// telemetry at `finish` so benchmarks can model the batch latency on a
    /// machine with ≥ `parallel_workers` cores even when the host has fewer.
    par_region_wall: Duration,
    par_region_critical: Duration,
}

impl<'a> Executor<'a> {
    fn new(cfg: &'a ExecutorConfig, snapshot: &'a GlobalState) -> Executor<'a> {
        Executor {
            cfg,
            snapshot,
            storages: BTreeMap::new(),
            balance: Ledger {
                snapshot,
                role: cfg.role,
                num_shards: cfg.num_shards,
                spent: BTreeMap::new(),
                deltas: BTreeMap::new(),
                log: Vec::new(),
            },
            nonce_committed: BTreeMap::new(),
            receipts: Vec::new(),
            deferred: Vec::new(),
            rerouted: Vec::new(),
            gas_used: 0,
            violations: Vec::new(),
            traced: Vec::new(),
            current_tx: 0,
            yield_nonce_marks: Vec::new(),
            track_yield_marks: false,
            trace_ctx: None,
            par_region_wall: Duration::ZERO,
            par_region_critical: Duration::ZERO,
        }
    }

    /// A worker executor for one layer: it sees the scheduler's current
    /// working state, spent totals, and committed nonces, but accumulates
    /// its own deltas, receipts, and priors from a clean slate.
    fn fork(&self) -> Executor<'a> {
        Executor {
            cfg: self.cfg,
            snapshot: self.snapshot,
            storages: self
                .storages
                .iter()
                .map(|(addr, s)| {
                    (*addr, ShardStorage {
                        state: s.state.fork(),
                        touched: BTreeSet::new(),
                        priors: BTreeMap::new(),
                    })
                })
                .collect(),
            balance: Ledger {
                snapshot: self.snapshot,
                role: self.cfg.role,
                num_shards: self.cfg.num_shards,
                spent: self.balance.spent.clone(),
                deltas: BTreeMap::new(),
                log: Vec::new(),
            },
            nonce_committed: self.nonce_committed.clone(),
            receipts: Vec::new(),
            deferred: Vec::new(),
            rerouted: Vec::new(),
            gas_used: 0,
            violations: Vec::new(),
            traced: Vec::new(),
            current_tx: 0,
            yield_nonce_marks: Vec::new(),
            track_yield_marks: true,
            trace_ctx: None,
            par_region_wall: Duration::ZERO,
            par_region_critical: Duration::ZERO,
        }
    }

    fn nonce_usable(&self, addr: &Address, nonce: u64) -> bool {
        let base_ok = self
            .snapshot
            .accounts
            .get(addr)
            .map(|a| a.nonces.is_usable(nonce))
            .unwrap_or(nonce > 0);
        base_ok
            && !self
                .nonce_committed
                .get(addr)
                .is_some_and(|ns| ns.contains(&nonce))
    }

    /// Runs one transaction, wrapped in a per-transaction trace span
    /// (`chain.tx.exec`) carrying the committee, worker placement, and the
    /// receipt's outcome. `process_inner` pushes exactly one receipt, so
    /// the outcome is read off `receipts.last()`.
    fn process(&mut self, tx: Transaction) {
        if !telemetry::trace::tracing_enabled() {
            self.process_inner(tx);
            return;
        }
        let mut span = telemetry::span!(telemetry::names::TX_EXEC);
        span.attr("tx", tx.id);
        span.attr("role", crate::network::assignment_label(self.cfg.role));
        if let Some(worker) = self.trace_ctx {
            span.attr("worker", worker);
        }
        self.process_inner(tx);
        if let Some(receipt) = self.receipts.last() {
            let status = match &receipt.status {
                TxStatus::Success => "success".to_string(),
                TxStatus::Failed(e) => format!("failed:{e}"),
                TxStatus::Rerouted(RerouteCause::OverflowGuard) => {
                    "rerouted:overflow_guard".to_string()
                }
                TxStatus::Rerouted(RerouteCause::CrossContract) => {
                    "rerouted:cross_contract".to_string()
                }
            };
            span.attr("status", status);
            span.attr("gas", receipt.gas_used);
        }
    }

    fn process_inner(&mut self, tx: Transaction) {
        self.current_tx = tx.id;
        if !self.nonce_usable(&tx.sender, tx.nonce) {
            self.receipts.push(Receipt {
                tx_id: tx.id,
                status: TxStatus::Failed("nonce already used".into()),
                gas_used: 0,
                events: Vec::new(),
            });
            return;
        }

        // Reserve the full gas budget up front; refund after execution.
        let fee_reserve = tx.gas_limit as u128 * tx.gas_price;
        let ledger_cp = self.balance.checkpoint();
        if self.balance.debit(tx.sender, fee_reserve).is_err() {
            self.receipts.push(Receipt {
                tx_id: tx.id,
                status: TxStatus::Failed("cannot reserve gas".into()),
                gas_used: 0,
                events: Vec::new(),
            });
            return;
        }

        let (status, gas, events) = match &tx.kind {
            TxKind::Payment { to, amount } => {
                let gas = COST_TX_BASE;
                let status = match self.balance.debit(tx.sender, *amount) {
                    Ok(()) => {
                        self.balance.credit(*to, *amount);
                        TxStatus::Success
                    }
                    Err(e) => TxStatus::Failed(e),
                };
                (status, gas, Vec::new())
            }
            TxKind::Call { contract, transition, args, amount } => {
                self.run_call(&tx, *contract, transition, args, *amount)
            }
        };

        if let TxStatus::Rerouted(_) = status {
            // No gas charged; release the reservation and hand the
            // transaction to the DS committee.
            self.balance.undo(ledger_cp);
            self.rerouted.push(tx.clone());
            self.receipts.push(Receipt { tx_id: tx.id, status, gas_used: 0, events: Vec::new() });
            return;
        }

        // Refund unused gas.
        let actual_fee = gas as u128 * tx.gas_price;
        self.balance.credit(tx.sender, fee_reserve.saturating_sub(actual_fee));
        self.gas_used += gas;
        let committed = self.nonce_committed.entry(tx.sender).or_default();
        if self.track_yield_marks {
            self.yield_nonce_marks.push((tx.sender, committed.len()));
        }
        committed.push(tx.nonce);
        self.receipts.push(Receipt { tx_id: tx.id, status, gas_used: gas, events });
    }

    fn run_call(
        &mut self,
        tx: &Transaction,
        contract: Address,
        transition: &str,
        args: &[(String, Value)],
        amount: u128,
    ) -> (TxStatus, u64, Vec<Value>) {
        let mut gas = GasMeter::new(tx.gas_limit.saturating_sub(COST_TX_BASE));
        let ledger_cp = self.balance.checkpoint();
        let mut journal = TxJournal::default();
        let mut events = Vec::new();
        let result = self.invoke(
            &mut journal,
            &mut gas,
            &mut events,
            tx.sender,
            tx.sender,
            contract,
            transition,
            args,
            amount,
            0,
        );
        let gas_total = COST_TX_BASE + gas.used();
        match result {
            Ok(()) => {
                if self.cfg.overflow_guard
                    && self.overflow_violation(&journal).is_some() {
                        journal.rollback(&mut self.storages);
                        self.balance.undo(ledger_cp);
                        return (TxStatus::Rerouted(RerouteCause::OverflowGuard), 0, Vec::new());
                    }
                journal.commit(&mut self.storages);
                (TxStatus::Success, gas_total, events)
            }
            Err(CallError::CrossContract) => {
                // The conservative single-contract check failed at runtime:
                // hand the whole transaction to the DS committee.
                journal.rollback(&mut self.storages);
                self.balance.undo(ledger_cp);
                (TxStatus::Rerouted(RerouteCause::CrossContract), 0, Vec::new())
            }
            Err(CallError::Exec(e)) => {
                journal.rollback(&mut self.storages);
                // The checkpoint was taken after the fee reservation, so
                // undoing restores exactly the reserved-fee ledger state.
                self.balance.undo(ledger_cp);
                (TxStatus::Failed(e.to_string()), gas_total, Vec::new())
            }
        }
    }

    /// Executes one transition invocation, recursing into messages sent to
    /// other contracts (DS committee only).
    #[allow(clippy::too_many_arguments)]
    fn invoke(
        &mut self,
        journal: &mut TxJournal,
        gas: &mut GasMeter,
        events: &mut Vec<Value>,
        origin: Address,
        sender: Address,
        contract: Address,
        transition: &str,
        args: &[(String, Value)],
        amount: u128,
        depth: u32,
    ) -> Result<(), CallError> {
        if depth > 4 {
            return Err(ExecError::BadInvocation("message chain too deep".into()).into());
        }
        let deployed = self
            .snapshot
            .contracts
            .get(&contract)
            .cloned()
            .ok_or_else(|| ExecError::BadInvocation(format!("no contract at {contract}")))?;

        self.ensure_storage(contract);
        let ctx = TransitionContext {
            sender: sender.0,
            origin: origin.0,
            amount,
            this_address: contract.0,
            block_number: self.cfg.block_number,
        };

        let (outcome, footprint) = {
            let storage = self.storages.get_mut(&contract).expect("ensured above");
            let mut store = JournaledStore { contract, inner: &mut storage.state, journal };
            if self.cfg.audit {
                let mut tracer = EffectTracer::new(transition);
                let out = deployed
                    .compiled
                    .execute_traced(
                        &mut store,
                        transition,
                        args,
                        &deployed.params,
                        &ctx,
                        gas,
                        &mut tracer,
                    )
                    .map_err(CallError::Exec)?;
                (out, Some(tracer.finish()))
            } else {
                let out = deployed
                    .compiled
                    .execute(&mut store, transition, args, &deployed.params, &ctx, gas)
                    .map_err(CallError::Exec)?;
                (out, None)
            }
        };
        if let Some(fp) = footprint {
            self.audit_invocation(&deployed, &fp, args, &ctx);
            self.traced.push(TracedCall {
                tx_id: self.current_tx,
                contract,
                sender,
                origin,
                amount,
                args: args.to_vec(),
                footprint: fp,
            });
        }

        if outcome.accepted && amount > 0 {
            self.balance
                .debit(sender, amount)
                .map_err(|e| CallError::Exec(ExecError::InsufficientFunds(e)))?;
            self.balance.credit(contract, amount);
        }
        events.extend(outcome.events);

        for msg in outcome.messages {
            self.deliver(
                journal,
                gas,
                events,
                origin,
                CallerFrame { contract, transition, args, sender },
                &msg,
                depth,
            )?;
        }
        Ok(())
    }

    /// Audits one traced invocation: containment of the concrete footprint
    /// in the static summary, plus the sharding-placement discipline when
    /// this committee is a shard and the contract carries a signature.
    fn audit_invocation(
        &mut self,
        deployed: &DeployedContract,
        fp: &DynamicFootprint,
        args: &[(String, Value)],
        ctx: &TransitionContext,
    ) {
        if telemetry::enabled() {
            telemetry::counter!(telemetry::names::AUDIT_TRACED).inc();
        }
        let resolve = |name: &str| -> Option<Value> {
            match name {
                "_sender" => Some(Value::address(ctx.sender)),
                "_origin" => Some(Value::address(ctx.origin)),
                "_amount" => Some(Value::Uint(128, ctx.amount)),
                "_this_address" => Some(Value::address(ctx.this_address)),
                _ => args
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| v.clone())
                    .or_else(|| deployed.param(name).cloned()),
            }
        };
        let mut found = Vec::new();
        if let Some(summary) = deployed.summary(&fp.transition) {
            found.extend(audit_transition(fp, &summary, &resolve));
        }
        if self.cfg.use_cosplit {
            if let (Assignment::Shard(s), Some(sig)) = (self.cfg.role, &deployed.signature) {
                if let Some(tcons) = sig.transition(&fp.transition) {
                    let contract = deployed.address;
                    let shard_of = |field: &str, keys: &[Value]| {
                        component_shard(contract, field, keys, self.cfg.num_shards)
                    };
                    found.extend(audit_placement(fp, sig, tcons, s, &shard_of));
                }
            }
        }
        if telemetry::enabled() && !found.is_empty() {
            telemetry::counter!(telemetry::names::AUDIT_VIOLATION).add(found.len() as u64);
        }
        self.violations.extend(found);
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        journal: &mut TxJournal,
        gas: &mut GasMeter,
        events: &mut Vec<Value>,
        origin: Address,
        from: CallerFrame<'_>,
        msg: &OutMsg,
        depth: u32,
    ) -> Result<(), CallError> {
        let recipient = Address(msg.recipient);
        if self.snapshot.is_contract(&recipient) {
            // A shard may follow the hop in place only when dispatch could
            // have predicted it: the message must match a statically
            // classified call site of the sending transition whose resolved
            // recipient is this recipient. Everything else reroutes to DS.
            let may_follow = self.cfg.allow_contract_msgs
                || (self.cfg.compose_calls && self.hop_allowed(&from, msg, recipient));
            if !may_follow {
                return Err(CallError::CrossContract);
            }
            let args: Vec<(String, Value)> =
                msg.params.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            return self.invoke(
                journal,
                gas,
                events,
                origin,
                from.contract,
                recipient,
                &msg.tag,
                &args,
                msg.amount,
                depth + 1,
            );
        }
        if msg.amount > 0 {
            self.balance
                .debit(from.contract, msg.amount)
                .map_err(|e| CallError::Exec(ExecError::InsufficientFunds(e)))?;
            self.balance.credit(recipient, msg.amount);
        }
        Ok(())
    }

    /// Validates one concrete send hop against the sender's classified call
    /// sites: some site of the sending transition must carry this tag and
    /// resolve — through deployment parameters, immutable init fields, or
    /// the caller's own frame — to exactly this recipient. This is the
    /// runtime re-check of the resolution dispatch composed over, so a
    /// contract whose behaviour diverges from its static call graph (stale
    /// summaries, byzantine code) falls back to DS instead of executing an
    /// unlocked hop.
    fn hop_allowed(&self, from: &CallerFrame<'_>, msg: &OutMsg, recipient: Address) -> bool {
        let Some(deployed) = self.snapshot.contracts.get(&from.contract) else {
            return false;
        };
        let info = deployed.call_info();
        let allowed = info.sites_of(from.transition).any(|site| {
            if site.tag.as_deref() != Some(&msg.tag) {
                return false;
            }
            let resolved = match &site.recipient {
                Recipient::Literal(c) => Address::from_hex(c).ok().map(Address::to_value),
                Recipient::ContractParam(p) => deployed.param(p).cloned(),
                Recipient::InitField(f) => self
                    .snapshot
                    .storage
                    .get(&from.contract)
                    .and_then(|s| s.fields().get(f).cloned()),
                Recipient::TransitionParam(p) => match p.as_str() {
                    "_sender" => Some(from.sender.to_value()),
                    "_origin" => None, // origin is never a contract's frame value here
                    _ => from.args.iter().find(|(n, _)| n == p).map(|(_, v)| v.clone()),
                },
                Recipient::Dynamic => None,
            };
            resolved.as_ref().and_then(Value::as_address) == Some(recipient.0)
        });
        allowed
    }

    fn ensure_storage(&mut self, contract: Address) {
        self.storages.entry(contract).or_insert_with(|| ShardStorage {
            // O(1): the epoch-start store is Arc-shared, not copied; all
            // writes land in the CowState overlay.
            state: self
                .snapshot
                .storage
                .get(&contract)
                .map(|base| CowState::new(Arc::clone(base)))
                .unwrap_or_default(),
            touched: BTreeSet::new(),
            priors: BTreeMap::new(),
        });
    }

    /// The §6 overflow guard: for every `IntMerge` component the *current
    /// transaction* touched, the shard's cumulative positive delta (which
    /// includes earlier committed transactions, via the working state) must
    /// not exceed `⌊(MAX − v)/N⌋` of the epoch-start value `v`.
    fn overflow_violation(&self, journal: &TxJournal) -> Option<Component> {
        // The DS committee serialises against merged state; the cross-shard
        // stage likewise commits each prepare into global state before the
        // next, so neither needs the N-way headroom split.
        if matches!(self.cfg.role, Assignment::Ds | Assignment::XShard) {
            return None;
        }
        for (addr, comp) in &journal.touched {
            {
                let Some(joins) = self.joins_of(addr) else { continue };
                let Some(storage) = self.storages.get(addr) else { continue };
                if joins.get(comp.0.as_str()) != Some(&Join::IntMerge) {
                    continue;
                }
                let base_storage = self.snapshot.storage.get(addr);
                let initial: u128 = match base_storage.and_then(|s| read_component(s.as_ref(), comp))
                {
                    Some(Value::Uint(_, n)) => n,
                    None => 0,
                    // A non-integer epoch-start value cannot be guarded;
                    // force the conservative path.
                    Some(_) => return Some(comp.clone()),
                };
                let (now, width) = match read_component(&storage.state, comp) {
                    Some(Value::Uint(w, n)) => (n, w),
                    _ => continue,
                };
                let headroom = uint_max(width).saturating_sub(initial);
                let allowance = headroom / self.cfg.num_shards as u128;
                if now > initial && now - initial > allowance {
                    return Some(comp.clone());
                }
            }
        }
        None
    }

    fn joins_of(&self, contract: &Address) -> Option<&BTreeMap<String, Join>> {
        if !self.cfg.use_cosplit {
            return None;
        }
        self.snapshot
            .contracts
            .get(contract)
            .and_then(|d| d.signature.as_ref())
            .map(|s| &s.joins)
    }

    // ------------------------------------------------------------ parallel

    /// Conflict-matrix-scheduled execution of one packet (the tentpole).
    ///
    /// Gas admission mirrors the serial loop exactly: a window of
    /// transactions is admitted while the sum of their gas *limits* still
    /// fits the remaining budget — so every admitted transaction would also
    /// have passed the serial per-transaction check — and after the window
    /// commits, the next transaction is re-tested against the *actual* gas
    /// used. The first transaction that cannot fit defers itself and, as in
    /// the serial path, everything behind it.
    fn run_parallel(&mut self, txs: Vec<Transaction>) {
        if telemetry::enabled() {
            telemetry::counter!(telemetry::names::PARALLEL_BATCHES).inc();
        }
        let mut pending: VecDeque<Transaction> = txs.into();
        let mut over_budget = false;
        while let Some(front) = pending.front() {
            if over_budget || self.gas_used + front.gas_limit > self.cfg.gas_limit {
                over_budget = true;
                let tx = pending.pop_front().expect("front exists");
                telemetry::trace::instant_with(telemetry::names::TX_DEFER, |a| {
                    a.push(("tx", tx.id.to_string()));
                    a.push(("why", "gas_budget".to_string()));
                });
                self.deferred.push(tx);
                continue;
            }
            let mut window = Vec::new();
            let mut planned = self.gas_used;
            while let Some(tx) = pending.front() {
                if planned + tx.gas_limit > self.cfg.gas_limit {
                    break;
                }
                planned += tx.gas_limit;
                window.push(pending.pop_front().expect("front exists"));
            }
            self.run_window(window);
        }
    }

    /// Executes one gas-admitted window: build the dependency DAG, drain it
    /// with a work-stealing worker pool, and re-assemble every
    /// per-transaction output in packet order.
    fn run_window(&mut self, window: Vec<Transaction>) {
        let dag = {
            let nodes: Vec<TxNode> =
                window.iter().map(|tx| TxNode::of(tx, self.snapshot)).collect();
            // An edge j → k (j earlier in the packet) exists iff the pair
            // interferes. "No edge" is a *symmetric* no-interference
            // guarantee, so a later-packet transaction may safely overtake
            // an earlier one: neither side reads, writes, or debits anything
            // the other touches, hence both receipts and the final state
            // match the serial packet order.
            dag_window(&nodes)
        };
        if telemetry::enabled() {
            let num_layers = dag.layer.iter().max().map_or(0, |m| m + 1);
            telemetry::histogram!(telemetry::names::PARALLEL_LAYERS, telemetry::SIZE_BUCKETS)
                .record(num_layers as u64);
            let mut widths = vec![0u64; num_layers];
            for l in &dag.layer {
                widths[*l] += 1;
            }
            for w in widths {
                telemetry::histogram!(
                    telemetry::names::PARALLEL_LAYER_WIDTH,
                    telemetry::SIZE_BUCKETS
                )
                .record(w);
            }
        }

        // A window that is one long dependency chain has no parallelism to
        // mine; run it inline and skip the worker forks entirely.
        let max_width = {
            let num_layers = dag.layer.iter().max().map_or(0, |m| m + 1);
            let mut widths = vec![0usize; num_layers];
            for l in &dag.layer {
                widths[*l] += 1;
            }
            widths.into_iter().max().unwrap_or(0)
        };
        if max_width <= 1 {
            for tx in window {
                self.process(tx);
            }
            return;
        }

        let num_txs = window.len();
        let mut slots: Vec<Option<TxSlot>> = Vec::new();
        slots.resize_with(num_txs, || None);
        // More workers than the DAG's widest antichain can never all be
        // busy; forking them would only copy state for nothing.
        let num_workers = self.cfg.parallel_workers.min(max_width).max(2);
        let mut workers: Vec<Executor<'a>> = (0..num_workers).map(|_| self.fork()).collect();

        let shared = WsShared {
            q: Mutex::new(WsQueue {
                window: window.into_iter().map(Some).collect(),
                npreds: dag.npreds,
                succs: dag.succs,
                // Seed with every dependency-free transaction, reversed so
                // the LIFO pop hands out packet order first.
                ready: Vec::new(),
                remaining: num_txs,
                log: Vec::new(),
                busy: vec![Duration::ZERO; num_txs],
            }),
            cv: Condvar::new(),
        };
        {
            let mut q = shared.q.lock().expect("queue lock");
            let roots: Vec<usize> = (0..num_txs).filter(|&k| q.npreds[k] == 0).collect();
            q.ready.extend(roots.into_iter().rev().map(|k| (k, usize::MAX)));
        }

        // Drain the DAG on scoped worker threads. Workers are fresh threads
        // with empty span stacks; nest their per-transaction spans under the
        // batch span running on this thread.
        let trace_parent = telemetry::trace::current_span();
        let wall = Instant::now();
        let outs: Vec<Vec<(usize, TxSlot)>> = std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = workers
                .iter_mut()
                .enumerate()
                .map(|(wi, w)| {
                    scope.spawn(move || {
                        let _adopt = telemetry::trace::adopt_parent(trace_parent);
                        ws_worker(w, wi, shared)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("window worker panicked")).collect()
        });
        let wall = wall.elapsed();

        for out in outs {
            for (k, slot) in out {
                slots[k] = Some(slot);
            }
        }
        let q = shared.q.into_inner().expect("workers exited");
        debug_assert_eq!(q.remaining, 0, "every transaction committed");

        // The window's critical path: per-transaction busy time composed
        // along the longest dependency chain. Edges run from lower to higher
        // packet index, so index order is already topological. This is the
        // batch latency a host with ≥ `num_workers` free cores would see;
        // the wall clock on a smaller host adds preemption stalls.
        let mut crit = q.busy.clone();
        let mut best = Duration::ZERO;
        for k in 0..num_txs {
            for &s in &q.succs[k] {
                let through = crit[k] + q.busy[s];
                if through > crit[s] {
                    crit[s] = through;
                }
            }
            best = best.max(crit[k]);
        }
        self.par_region_wall += wall;
        self.par_region_critical += best.min(wall);

        // Fold the whole commit log into the scheduler's working state in
        // one batched pass: compose the per-transaction deltas in commit
        // order (conflicting entries were dependency-sequenced, commuting
        // entries compose in any order) and apply the net effect once.
        let commits: Vec<&StateDelta> = q.log.iter().map(|c| &c.delta).collect();
        let batch = StateDelta::compose_ref(commits);
        self.apply_commit_delta(&batch);
        for c in &q.log {
            for (addr, v) in &c.spent {
                *self.balance.spent.entry(*addr).or_insert(0) += v;
            }
            self.gas_used += c.gas;
        }

        for slot in slots.into_iter().flatten() {
            self.receipts.push(slot.receipt);
            self.violations.extend(slot.violations);
            self.traced.extend(slot.traced);
            if let Some(tx) = slot.rerouted {
                self.rerouted.push(tx);
            }
        }
    }

    /// Runs one transaction and captures its outputs as a slot instead of
    /// leaving them appended to the executor's running vectors.
    fn process_slotted(&mut self, tx: Transaction) -> TxSlot {
        let v0 = self.violations.len();
        let t0 = self.traced.len();
        let r0 = self.rerouted.len();
        self.process(tx);
        TxSlot {
            receipt: self.receipts.pop().expect("process pushes one receipt"),
            violations: self.violations.split_off(v0),
            traced: self.traced.split_off(t0),
            rerouted: if self.rerouted.len() > r0 { self.rerouted.pop() } else { None },
        }
    }

    /// Yields a pool worker's contribution since the last yield — a
    /// [`StateDelta`] (integer deltas wherever the change is a plain
    /// add/sub, overwrites otherwise), the gross spent increments, and the
    /// gas it consumed — and resets the tracking so the next yield reports
    /// only its own work. Called once per committed transaction, this is the
    /// commit-log entry the work-stealing pool publishes. The worker's
    /// balance deltas are yield-local (`debit` never consults them), so
    /// taking the whole map is exact; `spent` is cumulative and stays.
    /// Everything is reconstructed from journals scoped to the yield
    /// (touched components, nonce marks, the ledger's undo log), so a yield
    /// costs O(work since the last yield), not O(accounts touched since the
    /// window began).
    fn take_yield(&mut self) -> (StateDelta, BTreeMap<Address, u128>, u64) {
        let mut delta = StateDelta::new();
        for (addr, storage) in &mut self.storages {
            if storage.touched.is_empty() {
                continue;
            }
            let mut cd = ContractDelta::default();
            for comp in &storage.touched {
                let final_v = read_component(&storage.state, comp);
                let prior = storage.priors.get(comp).cloned().flatten();
                let id = final_v.as_ref().and_then(|v| compute_int_delta(prior.as_ref(), v));
                match id {
                    Some(id) => {
                        cd.int_deltas.insert(comp.clone(), id);
                    }
                    None => {
                        cd.overwrites.insert(comp.clone(), final_v);
                    }
                }
            }
            storage.touched.clear();
            storage.priors.clear();
            delta.contracts.insert(*addr, cd);
        }
        delta.balances = std::mem::take(&mut self.balance.deltas);
        // The first `Spent` undo record per address carries its yield-start
        // gross total (later records only re-confirm it).
        let mut spent_base: BTreeMap<Address, u128> = BTreeMap::new();
        for entry in &self.balance.log {
            if let LedgerUndo::Spent(addr, prior) = entry {
                spent_base.entry(*addr).or_insert(prior.unwrap_or(0));
            }
        }
        self.balance.log.clear();
        let mut spent_diff = BTreeMap::new();
        for (addr, base) in spent_base {
            let cur = self.balance.spent.get(&addr).copied().unwrap_or(0);
            if cur > base {
                spent_diff.insert(addr, cur - base);
            }
        }
        // Likewise, the first nonce mark per sender carries its yield-start
        // committed count.
        for (addr, start) in std::mem::take(&mut self.yield_nonce_marks) {
            if delta.nonces.contains_key(&addr) {
                continue;
            }
            let ns = &self.nonce_committed[&addr];
            if ns.len() > start {
                delta.nonces.insert(addr, ns[start..].to_vec());
            }
        }
        (delta, spent_diff, std::mem::take(&mut self.gas_used))
    }

    /// Applies a batch of peer commits to this worker's working copy so the
    /// next claimed transaction starts from every ancestor's state.
    /// Deliberately does *not* record anything as touched: peer writes are
    /// context, not this worker's contribution, and must not resurface in
    /// its next yield. (Peer balance deltas are skipped outright — worker
    /// deltas are per-transaction and nothing on the worker reads them.)
    fn sync_peer_delta(&mut self, delta: &StateDelta, spent_diff: &BTreeMap<Address, u128>) {
        for (addr, cd) in &delta.contracts {
            self.ensure_storage(*addr);
            let storage = self.storages.get_mut(addr).expect("ensured above");
            for (comp, id) in &cd.int_deltas {
                let cur = read_component(&storage.state, comp);
                let new = apply_int_delta(cur.as_ref(), id).expect("peer commit applies");
                write_component(&mut storage.state, comp, Some(new));
            }
            for (comp, val) in &cd.overwrites {
                write_component(&mut storage.state, comp, val.clone());
            }
        }
        for (addr, ns) in &delta.nonces {
            self.nonce_committed.entry(*addr).or_default().extend(ns.iter().copied());
        }
        for (addr, v) in spent_diff {
            *self.balance.spent.entry(*addr).or_insert(0) += v;
        }
    }

    /// Applies the window's composed commit log onto the scheduler's working
    /// state. Integer deltas add onto the scheduler's window-start values —
    /// exactly the priors they compose over — and overwrites carry each
    /// component's final value, so one application reproduces the log.
    fn apply_commit_delta(&mut self, delta: &StateDelta) {
        for (addr, cd) in &delta.contracts {
            self.ensure_storage(*addr);
            let storage = self.storages.get_mut(addr).expect("ensured above");
            for (comp, id) in &cd.int_deltas {
                let cur = read_component(&storage.state, comp);
                let new = apply_int_delta(cur.as_ref(), id).expect("commit delta applies");
                write_component(&mut storage.state, comp, Some(new));
                storage.touched.insert(comp.clone());
            }
            for (comp, val) in &cd.overwrites {
                write_component(&mut storage.state, comp, val.clone());
                storage.touched.insert(comp.clone());
            }
        }
        for (addr, d) in &delta.balances {
            *self.balance.deltas.entry(*addr).or_insert(0) += d;
        }
        for (addr, ns) in &delta.nonces {
            self.nonce_committed.entry(*addr).or_default().extend(ns.iter().copied());
        }
    }

    /// Satellite cross-check (audit mode): every pair of traced invocations
    /// whose *concrete* footprints interfere must also be flagged by the
    /// static conflict matrix under the pair's concrete bindings — otherwise
    /// the parallel scheduler could have run them in the same layer.
    /// Invocations of the same transaction are exempt (a chained call
    /// interfering with its own caller is sequenced by the interpreter, not
    /// the scheduler).
    fn conflict_cross_check(&mut self) {
        if self.traced.len() < 2 {
            return;
        }
        let mut found = Vec::new();
        for i in 0..self.traced.len() {
            for j in i + 1..self.traced.len() {
                let (a, b) = (&self.traced[i], &self.traced[j]);
                if a.contract != b.contract || a.tx_id == b.tx_id {
                    continue;
                }
                let Some(clash) = concrete_pair_conflicts(&a.footprint, &b.footprint) else {
                    continue;
                };
                let Some(deployed) = self.snapshot.contracts.get(&a.contract) else {
                    continue;
                };
                let matrix = deployed.conflict_matrix();
                let bind_a = trace_binding(a, deployed);
                let bind_b = trace_binding(b, deployed);
                if matrix.conflicts_concrete(
                    &a.footprint.transition,
                    &bind_a,
                    &b.footprint.transition,
                    &bind_b,
                ) {
                    continue;
                }
                found.push(AuditViolation {
                    kind: ViolationKind::ConflictMissed,
                    transition: a.footprint.transition.clone(),
                    pseudofield: None,
                    concrete: format!(
                        "pair with '{}' (tx {} vs tx {}): {clash}",
                        b.footprint.transition, a.tx_id, b.tx_id
                    ),
                    abstract_op: None,
                    observed_op: None,
                    span: Span::default(),
                });
            }
        }
        if telemetry::enabled() && !found.is_empty() {
            telemetry::counter!(telemetry::names::AUDIT_VIOLATION).add(found.len() as u64);
        }
        self.violations.extend(found);
    }

    /// Composed-chain containment cross-check (audit + compose mode): for
    /// every traced transaction whose invocations span several contracts,
    /// re-run the interprocedural composition from the root frame and
    /// require every executed frame to appear in the composed callee set.
    /// An escape means a chain executed a hop the static call graph did not
    /// predict — the locks dispatch took did not cover it.
    fn composed_cross_check(&mut self) {
        if !self.cfg.compose_calls || self.traced.is_empty() {
            return;
        }
        let mut found = Vec::new();
        let mut i = 0;
        while i < self.traced.len() {
            let mut j = i + 1;
            while j < self.traced.len() && self.traced[j].tx_id == self.traced[i].tx_id {
                j += 1;
            }
            let group = &self.traced[i..j];
            i = j;
            // Root-frame trace order: the root is pushed before its
            // messages deliver, so it is first in the group.
            let root = &group[0];
            if !group.iter().any(|t| t.contract != root.contract) {
                continue; // single-contract: nothing composed to check.
            }
            let Some(deployed) = self.snapshot.contracts.get(&root.contract) else { continue };
            let composed = compose_chain(
                self.snapshot,
                deployed,
                &root.footprint.transition,
                &root.args,
                root.sender,
            );
            // No claim to check: composition declined or widened to ⊤, so
            // dispatch never routed this chain shard-locally.
            let Some(composed) = composed.filter(|c| !c.widened) else { continue };
            for frame in &group[1..] {
                let contract = frame.contract.to_string();
                if composed.contains(&contract, &frame.footprint.transition) {
                    continue;
                }
                found.push(AuditViolation {
                    kind: ViolationKind::ComposedEscape,
                    transition: root.footprint.transition.clone(),
                    pseudofield: None,
                    concrete: format!(
                        "tx {} reached {}.{} outside the composed callee set",
                        root.tx_id, contract, frame.footprint.transition
                    ),
                    abstract_op: None,
                    observed_op: None,
                    span: Span::default(),
                });
            }
        }
        if telemetry::enabled() && !found.is_empty() {
            telemetry::counter!(telemetry::names::AUDIT_VIOLATION).add(found.len() as u64);
        }
        self.violations.extend(found);
    }

    fn finish(mut self) -> MicroBlock {
        self.conflict_cross_check();
        self.composed_cross_check();
        if telemetry::enabled() && self.par_region_wall > Duration::ZERO {
            telemetry::counter!(telemetry::names::PARALLEL_REGION_WALL)
                .add(self.par_region_wall.as_micros() as u64);
            telemetry::counter!(telemetry::names::PARALLEL_REGION_CRITICAL)
                .add(self.par_region_critical.as_micros() as u64);
        }
        let mut delta = StateDelta::new();
        for (addr, storage) in &self.storages {
            if storage.touched.is_empty() {
                continue;
            }
            let joins = self.joins_of(addr).cloned().unwrap_or_default();
            let base = self.snapshot.storage.get(addr);
            let mut cd = ContractDelta::default();
            for comp in &storage.touched {
                let final_v = read_component(&storage.state, comp);
                let merge = joins.get(comp.0.as_str()) == Some(&Join::IntMerge);
                let delta = match (&final_v, merge) {
                    (Some(v), true) => {
                        let initial = base.and_then(|s| read_component(s.as_ref(), comp));
                        compute_int_delta(initial.as_ref(), v)
                    }
                    _ => None,
                };
                match delta {
                    Some(id) => {
                        cd.int_deltas.insert(comp.clone(), id);
                    }
                    // Non-integer, shape-changing, or out-of-i128-range
                    // changes fall back to an overwrite; under a correct
                    // signature only one shard can produce them.
                    None => {
                        cd.overwrites.insert(comp.clone(), final_v);
                    }
                }
            }
            delta.contracts.insert(*addr, cd);
        }
        delta.balances = self.balance.deltas.iter().filter(|(_, d)| **d != 0).map(|(a, d)| (*a, *d)).collect();
        delta.nonces = std::mem::take(&mut self.nonce_committed);

        MicroBlock {
            role: self.cfg.role,
            receipts: self.receipts,
            deferred: self.deferred,
            rerouted: self.rerouted,
            delta,
            gas_used: self.gas_used,
            audit_violations: self.violations,
        }
    }
}

/// The undo log shared by all invocations of one transaction (chained calls
/// roll back together — transitions are atomic, paper §3.1).
#[derive(Default)]
struct TxJournal {
    /// (contract, component, prior value) in write order.
    undo: Vec<(Address, Component, Option<Value>)>,
    /// Components written by this transaction.
    touched: Vec<(Address, Component)>,
}

impl TxJournal {
    fn commit(self, storages: &mut BTreeMap<Address, ShardStorage>) {
        // The first undo entry per component carries the value it had before
        // this executor ever wrote it — a layer worker turns those into its
        // against-layer-start delta.
        for (addr, comp, prior) in self.undo {
            if let Some(s) = storages.get_mut(&addr) {
                s.priors.entry(comp).or_insert(prior);
            }
        }
        for (addr, comp) in self.touched {
            if let Some(s) = storages.get_mut(&addr) {
                s.touched.insert(comp);
            }
        }
    }

    fn rollback(self, storages: &mut BTreeMap<Address, ShardStorage>) {
        for (addr, comp, prior) in self.undo.into_iter().rev() {
            let Some(s) = storages.get_mut(&addr) else { continue };
            let (field, keys) = &comp;
            match prior {
                Some(v) => {
                    if keys.is_empty() {
                        s.state.store_sym(*field, v);
                    } else {
                        s.state.map_update_sym(*field, keys, v);
                    }
                }
                None => {
                    if keys.is_empty() {
                        s.state.remove_field(field.as_str());
                    } else {
                        s.state.map_delete_sym(*field, keys);
                    }
                }
            }
        }
    }
}

/// A [`StateStore`] view that records undo information and touched
/// components into the transaction journal.
struct JournaledStore<'a, 'j> {
    contract: Address,
    inner: &'a mut CowState,
    journal: &'j mut TxJournal,
}

impl JournaledStore<'_, '_> {
    fn record(&mut self, field: Sym, keys: &[Value]) {
        // The field side of the component is a `Copy` symbol; only the key
        // path is owned. (Writes used to clone the field string per call —
        // `chain.state.hot_clones` counts any remaining owned-name copies.)
        let comp: Component = (field, keys.to_vec());
        let prior = read_component(self.inner, &comp);
        self.journal.undo.push((self.contract, comp.clone(), prior));
        self.journal.touched.push((self.contract, comp));
    }
}

/// Marks one string-name state access on the transaction hot path: the
/// caller paid a per-call intern (an owned-name allocation) that the
/// `Sym`-threaded pipeline avoids. Zero across a workload proves the hot
/// path is clone-free; see [`telemetry::names::STATE_HOT_CLONES`].
fn count_hot_clone() {
    if telemetry::enabled() {
        telemetry::counter!(telemetry::names::STATE_HOT_CLONES).inc();
    }
}

impl StateStore for JournaledStore<'_, '_> {
    fn load(&self, field: &str) -> Option<Value> {
        count_hot_clone();
        self.load_sym(scilla::intern::intern(field))
    }

    fn store(&mut self, field: &str, value: Value) {
        count_hot_clone();
        self.store_sym(scilla::intern::intern(field), value);
    }

    fn map_get(&self, field: &str, keys: &[Value]) -> Option<Value> {
        count_hot_clone();
        self.map_get_sym(scilla::intern::intern(field), keys)
    }

    fn map_update(&mut self, field: &str, keys: &[Value], value: Value) {
        count_hot_clone();
        self.map_update_sym(scilla::intern::intern(field), keys, value);
    }

    fn map_exists(&self, field: &str, keys: &[Value]) -> bool {
        count_hot_clone();
        self.map_exists_sym(scilla::intern::intern(field), keys)
    }

    fn map_delete(&mut self, field: &str, keys: &[Value]) {
        count_hot_clone();
        self.map_delete_sym(scilla::intern::intern(field), keys);
    }

    fn load_sym(&self, field: Sym) -> Option<Value> {
        self.inner.load_sym(field)
    }

    fn store_sym(&mut self, field: Sym, value: Value) {
        self.record(field, &[]);
        self.inner.store_sym(field, value);
    }

    fn map_get_sym(&self, field: Sym, keys: &[Value]) -> Option<Value> {
        self.inner.map_get_sym(field, keys)
    }

    fn map_update_sym(&mut self, field: Sym, keys: &[Value], value: Value) {
        self.record(field, keys);
        self.inner.map_update_sym(field, keys, value);
    }

    fn map_exists_sym(&self, field: Sym, keys: &[Value]) -> bool {
        self.inner.map_exists_sym(field, keys)
    }

    fn map_delete_sym(&mut self, field: Sym, keys: &[Value]) {
        self.record(field, keys);
        self.inner.map_delete_sym(field, keys);
    }
}

/// The calling thread's consumed CPU time (`CLOCK_THREAD_CPUTIME_ID`),
/// queried straight through the vDSO to keep the crate free of a libc
/// dependency. Returns zero if the clock is unavailable, which only skews
/// the *modelled* speedup telemetry, never execution results.
fn thread_cpu_time() -> Duration {
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { sec: 0, nsec: 0 };
    // SAFETY: `ts` is a valid, writable struct with `struct timespec`'s
    // layout on every 64-bit Linux ABI.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc == 0 {
        Duration::new(ts.sec as u64, ts.nsec as u32)
    } else {
        Duration::ZERO
    }
}

/// Scheduling metadata for one transaction in a parallel window.
struct TxNode<'t> {
    tx: &'t Transaction,
    /// For contract calls: the deployed contract and its conflict matrix.
    call: Option<(Arc<DeployedContract>, Arc<ConflictMatrix>)>,
}

impl<'t> TxNode<'t> {
    fn of(tx: &'t Transaction, snapshot: &GlobalState) -> TxNode<'t> {
        let call = match &tx.kind {
            TxKind::Call { contract, .. } => {
                snapshot.contracts.get(contract).map(|d| (Arc::clone(d), d.conflict_matrix()))
            }
            TxKind::Payment { .. } => None,
        };
        TxNode { tx, call }
    }
}

/// The interference DAG of one window. Vertices are packet indices; an edge
/// `j → k` (always `j < k`, so packet order is a topological order) means the
/// pair interferes and `k` must observe `j`'s commit before it runs.
struct WindowDag {
    /// Outgoing edges per vertex, each target strictly greater.
    succs: Vec<Vec<usize>>,
    /// Incoming edge count per vertex (the scheduler's ready countdown).
    npreds: Vec<usize>,
    /// Longest-path depth per vertex — kept for width/depth telemetry and
    /// the inline-serial fast path, not for scheduling.
    layer: Vec<usize>,
}

/// Builds every window transaction's dependency edges without testing all
/// `O(n²)` pairs: each transaction is only paired against *candidates* pulled
/// from token indices, and [`depends`] stays the authority on every candidate
/// pair. Token generation over-approximates `depends` (see the bucket
/// catalogue on [`CandidateIndex`]), so the resulting edge set is identical
/// to the exhaustive double loop — a transaction with no shared token shares
/// no sender, no account, and (via the matrix's verdict structure) no static
/// conflict or aliasing key clash with the other side.
fn dag_window(nodes: &[TxNode]) -> WindowDag {
    let mut scheds: BTreeMap<Address, ContractSched> = BTreeMap::new();
    for node in nodes {
        if let (TxKind::Call { contract, .. }, Some((deployed, matrix))) =
            (&node.tx.kind, &node.call)
        {
            scheds.entry(*contract).or_insert_with(|| ContractSched::of(deployed, matrix));
        }
    }
    let tokens: Vec<TxTokens> = nodes.iter().map(|nd| TxTokens::of(nd, &scheds)).collect();

    let mut index = CandidateIndex::default();
    let n = nodes.len();
    let mut succs = vec![Vec::new(); n];
    let mut npreds = vec![0usize; n];
    let mut layer = vec![0usize; n];
    // Dedup marker: a candidate surfacing from several buckets is tested once.
    let mut seen = vec![usize::MAX; n];
    for k in 0..n {
        let mut lk = 0usize;
        index.consult(&nodes[k], &tokens[k], &scheds, |j| {
            if seen[j] != k {
                seen[j] = k;
                // Unlike pure layering, *every* interfering predecessor
                // matters here — the ready countdown needs the full edge
                // set, so there is no layer-based skip.
                if depends(&nodes[j], &nodes[k]) {
                    succs[j].push(k);
                    npreds[k] += 1;
                    lk = lk.max(layer[j] + 1);
                }
            }
        });
        layer[k] = lk;
        index.insert(k, &nodes[k], &tokens[k]);
    }
    for s in &mut succs {
        s.sort_unstable();
    }
    WindowDag { succs, npreds, layer }
}

/// One committed transaction's published effect: the state delta it wrote,
/// the gross spent increments it charged, and the gas it burned, tagged with
/// the worker that produced it so workers skip re-applying their own work.
struct WsCommit {
    worker: usize,
    delta: StateDelta,
    spent: BTreeMap<Address, u128>,
    gas: u64,
}

/// The mutex-guarded heart of the work-stealing pool. One lock guards the
/// whole struct; workers hold it only for queue pops and commit pushes —
/// every transaction execution and every peer-delta application happens
/// outside it.
struct WsQueue {
    /// The window's transactions, taken (exactly once) as they are claimed.
    window: Vec<Option<Transaction>>,
    /// Per-transaction countdown of uncommitted interfering predecessors.
    npreds: Vec<usize>,
    /// Dependency successors (edges to strictly higher packet indices).
    succs: Vec<Vec<usize>>,
    /// Dependency-free transactions awaiting a worker, as `(packet index,
    /// releasing worker)` — `usize::MAX` for the window's roots. LIFO: a
    /// worker preferentially continues the chain it just unblocked.
    ready: Vec<(usize, usize)>,
    /// Transactions not yet committed; `0` means the window is drained.
    remaining: usize,
    /// Commit log in commit order. Arc'd so workers can snapshot an unseen
    /// suffix under the lock and apply it after releasing it.
    log: Vec<Arc<WsCommit>>,
    /// Per-transaction thread-CPU busy time, for critical-path modelling.
    busy: Vec<Duration>,
}

struct WsShared {
    q: Mutex<WsQueue>,
    cv: Condvar,
}

/// One worker's drain loop: claim a ready transaction (preferring work this
/// worker just unblocked, stealing from the shared queue otherwise), catch up
/// on peer commits in one batched composed apply, execute, publish the
/// commit, and release any newly dependency-free successors. Returns the
/// per-transaction output slots this worker produced, keyed by packet index.
///
/// Correctness of the lazy catch-up: a transaction becomes ready only after
/// every interfering predecessor has *committed to the log*, so whatever log
/// prefix exists at claim time contains all of its dependency ancestors.
/// Entries from non-interfering transactions touch disjoint state, so
/// applying them (or already holding residual writes from this worker's own
/// unrelated work) cannot change the claimed transaction's execution.
fn ws_worker(w: &mut Executor<'_>, wi: usize, shared: &WsShared) -> Vec<(usize, TxSlot)> {
    w.trace_ctx = Some(wi);
    let mut out: Vec<(usize, TxSlot)> = Vec::new();
    // Commit-log prefix this worker has already observed.
    let mut applied = 0usize;
    // A successor this worker unblocked and reserved for itself.
    let mut next: Option<(usize, usize)> = None;
    loop {
        let (k, origin, tx, fresh) = {
            let mut q = shared.q.lock().expect("ws queue lock");
            let (k, origin) = loop {
                if let Some(claimed) = next.take().or_else(|| q.ready.pop()) {
                    break claimed;
                }
                if q.remaining == 0 {
                    return out;
                }
                q = shared.cv.wait(q).expect("ws queue lock");
            };
            let tx = q.window[k].take().expect("transaction claimed exactly once");
            let fresh: Vec<Arc<WsCommit>> = q.log[applied..].to_vec();
            applied = q.log.len();
            (k, origin, tx, fresh)
        };
        if telemetry::enabled() {
            if origin == wi {
                telemetry::counter!("chain.executor.ws.local_pops").inc();
            } else {
                telemetry::counter!("chain.executor.ws.steals").inc();
            }
        }

        // Catch up on peer commits outside the lock: compose the unseen
        // suffix into one batched delta and apply it once, instead of one
        // full state pass per peer transaction.
        let peers: Vec<&Arc<WsCommit>> = fresh.iter().filter(|c| c.worker != wi).collect();
        if !peers.is_empty() {
            if telemetry::enabled() {
                telemetry::counter!("chain.executor.ws.drains").inc();
                telemetry::counter!("chain.executor.ws.drained_deltas")
                    .add(peers.len() as u64);
            }
            let batch = StateDelta::compose_ref(peers.iter().map(|c| &c.delta));
            let mut spent: BTreeMap<Address, u128> = BTreeMap::new();
            for c in &peers {
                for (addr, v) in &c.spent {
                    *spent.entry(*addr).or_insert(0) += v;
                }
            }
            w.sync_peer_delta(&batch, &spent);
        }

        let cpu0 = thread_cpu_time();
        let slot = w.process_slotted(tx);
        let (delta, spent, gas) = w.take_yield();
        let busy = thread_cpu_time().saturating_sub(cpu0);
        out.push((k, slot));

        {
            let mut q = shared.q.lock().expect("ws queue lock");
            q.log.push(Arc::new(WsCommit { worker: wi, delta, spent, gas }));
            q.busy[k] = busy;
            q.remaining -= 1;
            let mut newly: Vec<usize> = Vec::new();
            let WsQueue { succs, npreds, .. } = &mut *q;
            for &s in &succs[k] {
                npreds[s] -= 1;
                if npreds[s] == 0 {
                    newly.push(s);
                }
            }
            // Keep the lowest newly-ready successor for ourselves (its
            // ancestors' effects are already in our working state); publish
            // the rest, reversed so the LIFO pop hands out packet order.
            let mut it = newly.into_iter();
            next = it.next().map(|s| (s, wi));
            let rest: Vec<usize> = it.collect();
            for &s in rest.iter().rev() {
                q.ready.push((s, wi));
            }
            shared.cv.notify_all();
        }
    }
}

/// Per-contract scheduling tables, derived once per window.
struct ContractSched {
    /// For each matrix row: the rows whose verdict against it is a static
    /// `Conflict`. Those pairs depend for *every* argument binding, so the
    /// candidate test needs no key values — transition identity is enough.
    conflict_peers: Vec<Vec<usize>>,
    /// For each matrix row: the keyed `(field hash, key params)` accesses of
    /// the transition's summary (the clash vocabulary of its verdicts).
    accesses: Vec<Vec<(u64, Vec<String>)>>,
}

impl ContractSched {
    fn of(deployed: &DeployedContract, matrix: &ConflictMatrix) -> ContractSched {
        let n = matrix.len();
        let mut conflict_peers = vec![Vec::new(); n];
        for (i, peers) in conflict_peers.iter_mut().enumerate() {
            for j in 0..n {
                if matrix.verdict_at(i, j).is_conflict() {
                    peers.push(j);
                }
            }
        }
        let summaries = deployed.summaries();
        let accesses = matrix
            .transitions
            .iter()
            .map(|t| {
                summaries
                    .iter()
                    .find(|s| &s.name == t)
                    .map(|s| {
                        keyed_accesses(s)
                            .into_iter()
                            .map(|(field, keys)| (fnv_bytes(FNV_OFFSET, field.as_bytes()), keys))
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        ContractSched { conflict_peers, accesses }
    }
}

/// FNV-1a, used to render token cells as fixed-width hashes instead of
/// allocated strings. Hash collisions only ever surface *spurious*
/// candidates — [`depends`] re-checks every candidate pair — so the cheap
/// non-cryptographic hash is sound here.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

/// Structural hash of one resolved key value: equal values hash equal (the
/// property the cell-token match relies on — a `CommuteUnless` clash fires
/// only when both sides resolved equal key tuples), with a variant tag per
/// arm so distinct values separate at FNV odds.
fn fnv_value(h: u64, v: &Value) -> u64 {
    match v {
        Value::Int(bits, x) => {
            fnv_bytes(fnv_u64(fnv_u64(h, 1), u64::from(*bits)), &x.to_le_bytes())
        }
        Value::Uint(bits, x) => {
            fnv_bytes(fnv_u64(fnv_u64(h, 2), u64::from(*bits)), &x.to_le_bytes())
        }
        Value::Str(s) => fnv_bytes(fnv_u64(h, 3), s.as_bytes()),
        Value::ByStr(bs) => fnv_bytes(fnv_u64(h, 4), bs),
        Value::BNum(n) => fnv_u64(fnv_u64(h, 5), *n),
        Value::Map(m) => {
            let mut h = fnv_u64(h, 6);
            for (k, val) in m.iter() {
                h = fnv_value(fnv_value(h, k), val);
            }
            h
        }
        Value::Adt { ctor, args } => {
            let mut h = fnv_bytes(fnv_u64(h, 7), ctor.as_str().as_bytes());
            for a in args {
                h = fnv_value(h, a);
            }
            h
        }
        // Closures and messages never appear as map keys in practice; lump
        // them into one bucket (over-approximation stays sound).
        _ => fnv_u64(h, 8),
    }
}

/// The index tokens of one transaction. Tokens only prune candidates; they
/// must over-approximate [`depends`], never refine it.
#[derive(Default)]
struct TxTokens {
    /// Matrix row of the called transition, when the matrix knows it.
    row: Option<usize>,
    /// Call the analysis cannot vouch for (unknown contract or transition):
    /// conservatively pairs with every call on the same contract.
    serial: bool,
    /// Resolved concrete cells, one hash per keyed access whose key tuple
    /// fully resolves under the call's binding. A `CommuteUnless` clash fires
    /// only when both sides resolve one of their tuples to equal values — in
    /// which case both rendered the same cell hash.
    cells: Vec<u64>,
    /// Field hashes of keyed accesses (paired against unresolved peers).
    fields: Vec<u64>,
    /// Fields with an unresolvable key: the clash cannot be refuted, so pair
    /// with every transaction touching the field.
    unresolved: Vec<u64>,
}

impl TxTokens {
    fn of(node: &TxNode, scheds: &BTreeMap<Address, ContractSched>) -> TxTokens {
        let TxKind::Call { contract, transition, args, amount } = &node.tx.kind else {
            return TxTokens::default();
        };
        let Some((deployed, matrix)) = &node.call else {
            return TxTokens { serial: true, ..TxTokens::default() };
        };
        let Some(row) = matrix.index_of(transition) else {
            return TxTokens { serial: true, ..TxTokens::default() };
        };
        let sched = &scheds[contract];
        let bind = call_binding(node.tx.sender, *contract, *amount, args, deployed);
        let mut out = TxTokens { row: Some(row), ..TxTokens::default() };
        for (field_h, keys) in &sched.accesses[row] {
            if !out.fields.contains(field_h) {
                out.fields.push(*field_h);
            }
            let mut cell = fnv_u64(*field_h, keys.len() as u64);
            let mut resolved = true;
            for k in keys {
                match bind(k) {
                    Some(v) => cell = fnv_value(cell, &v),
                    None => {
                        resolved = false;
                        break;
                    }
                }
            }
            if resolved {
                out.cells.push(cell);
            } else if !out.unresolved.contains(field_h) {
                out.unresolved.push(*field_h);
            }
        }
        out.cells.sort_unstable();
        out.cells.dedup();
        out
    }
}

/// Token buckets mapping each dependency source of [`depends`] to a narrow
/// candidate list:
///
/// * same sender → `by_sender`;
/// * account overlap (payments, and the cross-contract / mixed cases) →
///   `by_account` (payment endpoints and call senders) × `by_call` (the
///   contract address a call debits);
/// * same-contract calls → the matrix decomposition: static `Conflict`
///   verdicts via `by_row` (per-transition lists), key clashes via `by_cell`
///   (fires ⇒ both sides rendered the identical cell) with `by_field` /
///   `by_field_unresolved` catching unresolvable keys, and `by_call` /
///   `by_call_serial` pairing calls the analysis cannot vouch for with
///   everything on their contract.
///
/// Same-contract call pairs deliberately do *not* meet through the contract's
/// own account entry (that would re-create the quadratic scan); their funds
/// movement is a `NativeFunds` matrix conflict, covered by `by_row`.
#[derive(Default)]
struct CandidateIndex {
    by_sender: BTreeMap<Address, Vec<usize>>,
    by_account: BTreeMap<Address, Vec<usize>>,
    by_call: BTreeMap<Address, Vec<usize>>,
    by_call_serial: BTreeMap<Address, Vec<usize>>,
    by_row: BTreeMap<(Address, usize), Vec<usize>>,
    by_cell: BTreeMap<(Address, u64), Vec<usize>>,
    by_field: BTreeMap<(Address, u64), Vec<usize>>,
    by_field_unresolved: BTreeMap<(Address, u64), Vec<usize>>,
}

impl CandidateIndex {
    fn consult(
        &self,
        node: &TxNode,
        t: &TxTokens,
        scheds: &BTreeMap<Address, ContractSched>,
        mut visit: impl FnMut(usize),
    ) {
        let mut scan = |list: Option<&Vec<usize>>| {
            for &j in list.into_iter().flatten() {
                visit(j);
            }
        };
        scan(self.by_sender.get(&node.tx.sender));
        match &node.tx.kind {
            TxKind::Payment { to, .. } => {
                for acc in [node.tx.sender, *to] {
                    scan(self.by_account.get(&acc));
                    scan(self.by_call.get(&acc));
                }
            }
            TxKind::Call { contract, .. } => {
                scan(self.by_account.get(&node.tx.sender));
                scan(self.by_call.get(&node.tx.sender));
                scan(self.by_account.get(contract));
                if t.serial {
                    scan(self.by_call.get(contract));
                    return;
                }
                scan(self.by_call_serial.get(contract));
                let row = t.row.expect("non-serial call has a matrix row");
                for &p in &scheds[contract].conflict_peers[row] {
                    scan(self.by_row.get(&(*contract, p)));
                }
                for cell in &t.cells {
                    scan(self.by_cell.get(&(*contract, *cell)));
                }
                for f in &t.fields {
                    scan(self.by_field_unresolved.get(&(*contract, *f)));
                }
                for f in &t.unresolved {
                    scan(self.by_field.get(&(*contract, *f)));
                }
            }
        }
    }

    fn insert(&mut self, k: usize, node: &TxNode, t: &TxTokens) {
        self.by_sender.entry(node.tx.sender).or_default().push(k);
        match &node.tx.kind {
            TxKind::Payment { to, .. } => {
                self.by_account.entry(node.tx.sender).or_default().push(k);
                self.by_account.entry(*to).or_default().push(k);
            }
            TxKind::Call { contract, .. } => {
                self.by_account.entry(node.tx.sender).or_default().push(k);
                self.by_call.entry(*contract).or_default().push(k);
                if t.serial {
                    self.by_call_serial.entry(*contract).or_default().push(k);
                    return;
                }
                let row = t.row.expect("non-serial call has a matrix row");
                self.by_row.entry((*contract, row)).or_default().push(k);
                for cell in &t.cells {
                    self.by_cell.entry((*contract, *cell)).or_default().push(k);
                }
                for f in &t.fields {
                    self.by_field.entry((*contract, *f)).or_default().push(k);
                }
                for f in &t.unresolved {
                    self.by_field_unresolved.entry((*contract, *f)).or_default().push(k);
                }
            }
        }
    }
}

/// The protocol accounts a transaction can directly debit or credit (the
/// conservative non-matrix dependency test).
fn tx_accounts(tx: &Transaction) -> [Address; 2] {
    match &tx.kind {
        TxKind::Payment { to, .. } => [tx.sender, *to],
        TxKind::Call { contract, .. } => [tx.sender, *contract],
    }
}

/// Must the two transactions observe each other's effects? Same-sender pairs
/// always depend (nonce sequencing and fee accounting). Calls into the same
/// contract consult the conflict matrix under the pair's concrete argument
/// bindings — a funds-moving transition is a matrix conflict, so a commuting
/// verdict also proves the contract's own balance is untouched. Everything
/// else falls back to sender/recipient account overlap.
fn depends(a: &TxNode, b: &TxNode) -> bool {
    if a.tx.sender == b.tx.sender {
        return true;
    }
    if let (
        TxKind::Call { contract: ca, transition: ta, args: args_a, amount: amt_a },
        TxKind::Call { contract: cb, transition: tb, args: args_b, amount: amt_b },
    ) = (&a.tx.kind, &b.tx.kind)
    {
        if ca == cb {
            let Some((deployed, matrix)) = &a.call else {
                // Unknown contract: both calls fail without touching state,
                // but stay conservative.
                return true;
            };
            let bind_a = call_binding(a.tx.sender, *ca, *amt_a, args_a, deployed);
            let bind_b = call_binding(b.tx.sender, *cb, *amt_b, args_b, deployed);
            return matrix.conflicts_concrete(ta, &bind_a, tb, &bind_b);
        }
    }
    let accounts = tx_accounts(a.tx);
    tx_accounts(b.tx).iter().any(|x| accounts.contains(x))
}

/// The implicit-and-explicit parameter binding of a top-level call, shaped
/// for `ConflictMatrix::conflicts_concrete`.
fn call_binding<'t>(
    sender: Address,
    contract: Address,
    amount: u128,
    args: &'t [(String, Value)],
    deployed: &'t DeployedContract,
) -> impl Fn(&str) -> Option<Value> + 't {
    move |name: &str| match name {
        "_sender" | "_origin" => Some(Value::address(sender.0)),
        "_amount" => Some(Value::Uint(128, amount)),
        "_this_address" => Some(Value::address(contract.0)),
        _ => args
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .or_else(|| deployed.param(name).cloned()),
    }
}

/// The binding of one traced invocation (sender and origin may differ for
/// chained calls on the DS committee).
fn trace_binding<'t>(
    call: &'t TracedCall,
    deployed: &'t DeployedContract,
) -> impl Fn(&str) -> Option<Value> + 't {
    move |name: &str| match name {
        "_sender" => Some(Value::address(call.sender.0)),
        "_origin" => Some(Value::address(call.origin.0)),
        "_amount" => Some(Value::Uint(128, call.amount)),
        "_this_address" => Some(Value::address(call.contract.0)),
        _ => call
            .args
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .or_else(|| deployed.param(name).cloned()),
    }
}

/// Writes (or deletes) one component in a working storage.
fn write_component(state: &mut CowState, comp: &Component, value: Option<Value>) {
    let (field, keys) = comp;
    match value {
        Some(v) => {
            if keys.is_empty() {
                state.store_sym(*field, v);
            } else {
                state.map_update_sym(*field, keys, v);
            }
        }
        None => {
            if keys.is_empty() {
                state.remove_field(field.as_str());
            } else {
                state.map_delete_sym(*field, keys);
            }
        }
    }
}
