//! Automated contract repair (paper §6): take an NFT contract whose `Burn`
//! uses a state-read value as a map key (unshardable), apply the
//! compare-and-swap rewrite, and show the before/after source and analysis
//! verdicts.
//!
//! ```text
//! cargo run --example contract_repair
//! ```

use cosplit::analysis::repair::repair_contract;
use cosplit::analysis::signature::WeakReads;
use cosplit::analysis::solver::AnalyzedContract;
use cosplit::scilla;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = scilla::corpus::get("NonfungibleToken").expect("corpus contract");
    let checked = scilla::typechecker::typecheck(scilla::parser::parse_module(entry.source)?)?;

    let before = AnalyzedContract::analyze(&checked);
    println!("== Before repair ==");
    println!(
        "Burn summary contains ⊤ (state-read map key): {}",
        before.summary("Burn").expect("transition").has_top()
    );
    let sig = before.query(&["Burn".into()], &WeakReads::AcceptAll);
    println!("Burn shardable: {}\n", sig.transition("Burn").unwrap().is_shardable());

    let outcome = repair_contract(&checked)?;
    println!("== Repair reports ==");
    for r in &outcome.reports {
        println!("transition {}:", r.transition);
        for p in &r.added_params {
            println!(
                "  added parameter '{}' : {} (compare-and-swap for state binder '{}')",
                p.param, p.ty, p.replaces_binder
            );
        }
    }

    let after = AnalyzedContract::analyze(&outcome.checked);
    let sig = after.query(&["Burn".into()], &WeakReads::AcceptAll);
    println!("\n== After repair ==");
    println!("Burn summary contains ⊤: {}", after.summary("Burn").unwrap().has_top());
    println!("Burn shardable: {}", sig.transition("Burn").unwrap().is_shardable());
    println!("Burn constraints:");
    for c in &sig.transition("Burn").unwrap().constraints {
        println!("  {c}");
    }

    // The rewritten transition, as the developer would see it before
    // deployment.
    println!("\n== Rewritten Burn (proposed to the developer) ==\n");
    let burn = outcome.checked.contract().transition("Burn").expect("still there").clone();
    let solo = scilla::ast::ContractModule {
        library_name: None,
        library: vec![],
        contract: scilla::ast::Contract {
            name: scilla::ast::Ident::new("Excerpt"),
            params: vec![],
            fields: vec![],
            transitions: vec![burn],
        },
    };
    let printed = scilla::printer::print_module(&solo);
    let body = printed.split_once("transition").map(|(_, b)| b).unwrap_or(&printed);
    println!("transition{body}");
    Ok(())
}
