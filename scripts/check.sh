#!/usr/bin/env bash
# Full offline verification: build, test, lint. The workspace has no
# registry dependencies (everything external lives in vendor/), so this
# runs without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== sim smoke (differential oracle, fixed seed) =="
cargo run --release -q -p cosplit-bench --bin sim_smoke

echo "== audit smoke (effect-trace sanitizer + corpus lint sweep) =="
cargo run --release -q -p cosplit-bench --bin audit_smoke

echo "== matrix smoke (corpus-wide conflict-matrix derivation + pair verdicts) =="
cargo run --release -q -p cosplit-bench --bin matrix_smoke

echo "== state smoke (CoW snapshot/fork cost stays flat as state grows) =="
cargo run --release -q -p cosplit-bench --bin state_smoke

echo "All checks passed."
