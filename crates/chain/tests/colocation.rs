//! Signature-aware placement: with `ChainConfig::colocate_families` a
//! contract deployed with an init parameter referencing an existing
//! contract (a router's token, an auction's NFT) is pinned to that root's
//! shard via the `GlobalState::placement` override — and dispatch and the
//! executor's balance slicing both read it through `home_shard_of`, so a
//! call that would have been cross-shard under pure address hashing
//! becomes shard-local.

use chain::address::Address;
use chain::dispatch::{dispatch, Assignment, DispatchReason};
use chain::network::{ChainConfig, Network};
use chain::tx::Transaction;

const SHARDS: u32 = 4;

const TOKEN: &str = r#"
    contract Token ()
    field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
    transition Mint (to : ByStr20, amount : Uint128)
      to_opt <- balances[to];
      nt = match to_opt with
        | Some b => builtin add b amount
        | None => amount
        end;
      balances[to] := nt
    end
"#;

const ROUTER: &str = r#"
    library RouterLib
    let nil_msg = Nil {Message}
    let one_msg = fun (m : Message) => Cons {Message} m nil_msg
    let zero = Uint128 0

    contract Router (init_target : ByStr20)
    field target : ByStr20 = init_target

    transition Pay (to : ByStr20)
      msg = {_tag : ""; _recipient : to; _amount : zero};
      msgs = one_msg msg;
      send msgs
    end
"#;

/// A contract address whose *hashed* home shard differs from `shard`.
fn contract_addr_off_shard(shard: u32) -> Address {
    (5_000_000u64..)
        .map(Address::from_index)
        .find(|a| a.home_shard(SHARDS) != shard)
        .expect("some address hashes off any given shard")
}

fn world(colocate: bool) -> (Network, Address, Address) {
    let config =
        ChainConfig { colocate_families: colocate, ..ChainConfig::small(SHARDS, true) };
    let mut net = Network::new(config);
    for i in 0..64 {
        net.fund_account(Address::from_index(i), 1_000_000_000);
    }
    let token = Address::from_index(4_000_000);
    net.deploy(token, TOKEN, vec![], None).unwrap();
    // The router's init param references the token: one contract family.
    let router = contract_addr_off_shard(token.home_shard(SHARDS));
    net.deploy(
        router,
        ROUTER,
        vec![("init_target".to_string(), token.to_value())],
        None,
    )
    .unwrap();
    (net, token, router)
}

#[test]
fn family_deploys_pin_to_the_roots_shard() {
    let (net, token, router) = world(true);
    let root_shard = token.home_shard(SHARDS);
    assert_ne!(router.home_shard(SHARDS), root_shard, "test needs a cross-shard pair");
    assert_eq!(
        net.state().home_shard_of(&router, SHARDS),
        root_shard,
        "the placement override pins the router to the token's shard"
    );

    // Dispatch agrees: a user on the root's shard calling the router is
    // baseline-local now, where pure address hashing would have sent it
    // cross-shard to the DS.
    let local_user = (0u64..)
        .map(Address::from_index)
        .find(|a| a.home_shard(SHARDS) == root_shard)
        .unwrap();
    let tx = Transaction::call(1, local_user, 1, router, "Pay", vec![(
        "to".into(),
        local_user.to_value(),
    )]);
    let d = dispatch(&tx, net.state(), SHARDS, true);
    assert_eq!(d.assignment, Assignment::Shard(root_shard));
    assert_eq!(d.reason, DispatchReason::BaselineLocal);
}

#[test]
fn colocation_off_keeps_hashed_placement() {
    let (net, token, router) = world(false);
    assert_eq!(
        net.state().home_shard_of(&router, SHARDS),
        router.home_shard(SHARDS),
        "without the flag, placement is pure address hashing"
    );
    assert_ne!(net.state().home_shard_of(&router, SHARDS), token.home_shard(SHARDS));

    // The same call now splits sender-home vs contract-home: baseline-cross
    // → DS.
    let local_user = (0u64..)
        .map(Address::from_index)
        .find(|a| a.home_shard(SHARDS) == token.home_shard(SHARDS))
        .unwrap();
    let tx = Transaction::call(1, local_user, 1, router, "Pay", vec![(
        "to".into(),
        local_user.to_value(),
    )]);
    let d = dispatch(&tx, net.state(), SHARDS, true);
    assert_eq!(d.assignment, Assignment::Ds);
    assert_eq!(d.reason, DispatchReason::BaselineCross);
}

/// A committed epoch on a co-located family must stay consistent: the
/// router executes on the token's shard with its full balance slice.
#[test]
fn colocated_family_commits_shard_locally() {
    let (mut net, token, router) = world(true);
    let root_shard = token.home_shard(SHARDS);
    let payer = (0u64..)
        .map(Address::from_index)
        .find(|a| a.home_shard(SHARDS) == root_shard)
        .unwrap();
    let payee = Address::from_index(40);
    let mut pool = vec![Transaction::call(7, payer, 1, router, "Pay", vec![(
        "to".into(),
        payee.to_value(),
    )])];
    let report = net.run_epoch(&mut pool);
    assert_eq!(report.committed, 1, "{report:?}");
    assert!(pool.is_empty());
    let on_shard = report
        .per_committee
        .iter()
        .any(|(a, committed, _)| *a == Assignment::Shard(root_shard) && *committed == 1);
    assert!(on_shard, "the family call commits on the root's shard: {report:?}");
}
