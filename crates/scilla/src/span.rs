//! Source locations.
//!
//! Every token and AST node carries a [`Span`] so that diagnostics from the
//! type checker and the CoSplit analysis can point back into contract source.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file, plus the
/// 1-based line/column of its start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span covering `[start, end)` at the given line/column.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span { start, end, line, col }
    }

    /// A zero-width placeholder span for synthesised nodes.
    pub fn dummy() -> Self {
        Span { start: 0, end: 0, line: 0, col: 0 }
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// The line/column of the merged span is taken from whichever operand
    /// starts first.
    pub fn merge(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start { (self, other) } else { (other, self) };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_extremes() {
        let a = Span::new(5, 10, 1, 6);
        let b = Span::new(8, 20, 2, 3);
        let m = a.merge(b);
        assert_eq!((m.start, m.end), (5, 20));
        assert_eq!((m.line, m.col), (1, 6));
    }

    #[test]
    fn merge_is_commutative() {
        let a = Span::new(5, 10, 1, 6);
        let b = Span::new(8, 20, 2, 3);
        assert_eq!(a.merge(b), b.merge(a));
    }

    #[test]
    fn display_is_line_col() {
        assert_eq!(Span::new(0, 1, 3, 7).to_string(), "3:7");
    }
}
