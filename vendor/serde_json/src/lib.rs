//! In-tree replacement for the subset of `serde_json` this workspace uses.
//!
//! The build environment is fully offline (no crates.io registry), so the
//! workspace vendors a small JSON implementation under the upstream package
//! name: call sites keep writing `serde_json::Value`, `json!`, `from_str`
//! and `to_string` unchanged. Only the surface actually exercised by the
//! repo is provided; there is no generic serde data model.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON object. Ordered (and deterministic) like upstream serde_json's
/// default `BTreeMap` backing.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integer when it fits, floating point otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything with a fraction or exponent.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(x)) => Some(*x),
            _ => None,
        }
    }

    /// Object member lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Like upstream: indexing a non-object or a missing key yields `Null`
    /// rather than panicking.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Number(Number::Float(x))
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::PosInt(n as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n as i64))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Value {
        o.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Writes `s` as a JSON string literal (with escapes) into `out`.
fn write_escaped(out: &mut impl fmt::Write, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            '\u{08}' => out.write_str("\\b")?,
            '\u{0c}' => out.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

impl fmt::Display for Value {
    /// Compact serialisation, matching upstream `serde_json::to_string`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse (or conversion) failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error with a custom message (mirrors `serde::de::Error::custom`).
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types buildable from a parsed JSON tree (`from_str::<T>` targets).
pub trait FromJson: Sized {
    fn from_json_value(v: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json_value(v: Value) -> Result<Value, Error> {
        Ok(v)
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_json_value(v)
}

/// Serialises any displayable JSON value (our `Value` goes through `Display`).
pub fn to_string(v: &Value) -> Result<String, Error> {
    Ok(v.to_string())
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(Error::custom("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("expected ',' or ']' at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    map.insert(key, v);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error::custom(format!("expected ',' or '}}' at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::custom(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a following \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| Error::custom("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::custom("lone surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::custom(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::custom("control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // encoding is already valid; copy its bytes wholesale).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(Error::custom)?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(Error::custom(format!("bad number at byte {start}")));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(Error::custom("missing digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(Error::custom("missing exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        let x: f64 = text.parse().map_err(|_| Error::custom(format!("bad number '{text}'")))?;
        Ok(Value::Number(Number::Float(x)))
    }
}

/// Builds a [`Value`] from a JSON-shaped literal, like upstream's `json!`.
///
/// Supports the forms used in this workspace: `json!(null)`, scalars,
/// `json!([expr, ...])` and `json!({"key": expr, ...})` where each value is
/// any Rust expression convertible into [`Value`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = json!({"a": 1u32, "b": json!([true, "x"]), "c": Value::Null});
        let s = v.to_string();
        assert_eq!(s, r#"{"a":1,"b":[true,"x"],"c":null}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = json!({"s": "a\"b\\c\nd\u{1}é"});
        let back: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn index_missing_is_null() {
        let v = json!({"a": 1u32});
        assert!(v["missing"].is_null());
        assert_eq!(v["a"].as_u64(), Some(1));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("42 43").is_err());
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(from_str::<Value>("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str::<Value>("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(from_str::<Value>("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(from_str::<Value>("1e3").unwrap().as_f64(), Some(1000.0));
    }
}
