//! Execution smoke tests over the corpus: beyond compiling, representative
//! contracts must actually *run* — transitions succeed, guards reject, and
//! state lands where expected.

use scilla::error::ExecError;
use scilla::gas::GasMeter;
use scilla::interpreter::{CompiledContract, TransitionContext, TransitionOutcome};
use scilla::state::{InMemoryState, StateStore};
use scilla::value::Value;

struct Harness {
    contract: CompiledContract,
    params: Vec<(String, Value)>,
    state: InMemoryState,
    block: u64,
}

fn addr(b: u8) -> [u8; 20] {
    [b; 20]
}

impl Harness {
    fn new(corpus_name: &str, params: Vec<(String, Value)>) -> Self {
        let entry = scilla::corpus::get(corpus_name).expect("corpus contract");
        let contract = scilla::compile_str(entry.source).expect("compiles");
        let state = InMemoryState::from_fields(contract.init_fields(&params).expect("init"));
        Harness { contract, params, state, block: 1 }
    }

    fn call(
        &mut self,
        sender: [u8; 20],
        amount: u128,
        transition: &str,
        args: &[(&str, Value)],
    ) -> Result<TransitionOutcome, ExecError> {
        let ctx = TransitionContext {
            sender,
            origin: sender,
            amount,
            this_address: addr(0xCC),
            block_number: self.block,
        };
        let args: Vec<(String, Value)> =
            args.iter().map(|(n, v)| (n.to_string(), v.clone())).collect();
        let mut gas = GasMeter::new(1_000_000);
        // Atomicity: run against a scratch copy, commit on success.
        let mut scratch = self.state.clone();
        let r = self.contract.execute(&mut scratch, transition, &args, &self.params, &ctx, &mut gas);
        if r.is_ok() {
            self.state = scratch;
        }
        r
    }
}

fn uint(v: u128) -> Value {
    Value::Uint(128, v)
}

#[test]
fn htlc_lock_withdraw_refund_cycle() {
    let mut h = Harness::new("HTLC", vec![("init_fee_collector".into(), Value::address(addr(9)))]);
    // The contract hashes the preimage with the (deterministic) digest.
    let preimage = Value::Str("secret".into());
    let hash = Value::ByStr(scilla::builtins::digest32(&preimage));

    h.call(addr(1), 500, "NewLock", &[("hash", hash.clone()), ("deadline", Value::BNum(10))])
        .expect("lock");
    assert_eq!(h.state.map_get("lock_amounts", std::slice::from_ref(&hash)), Some(uint(500)));

    // Refund before the deadline fails…
    let err = h.call(addr(1), 0, "Refund", &[("hash", hash.clone())]).unwrap_err();
    assert!(matches!(&err, ExecError::Thrown(m) if m.contains("NotExpired")), "{err}");

    // …withdrawal with the right preimage pays out.
    let out = h.call(addr(2), 0, "Withdraw", &[("preimage", preimage)]).expect("withdraw");
    assert_eq!(out.messages.len(), 1);
    assert_eq!(out.messages[0].amount, 500);
    assert_eq!(out.messages[0].recipient, addr(2));
    assert_eq!(h.state.map_get("lock_amounts", &[hash]), None);
}

#[test]
fn voting_single_vote_per_account() {
    let mut h = Harness::new("Voting", vec![("election_officer".into(), Value::address(addr(9)))]);
    h.call(addr(1), 0, "Vote", &[("option", Value::Str("yes".into()))]).expect("first vote");
    let err = h.call(addr(1), 0, "Vote", &[("option", Value::Str("no".into()))]).unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("AlreadyVoted")));
    h.call(addr(2), 0, "Vote", &[("option", Value::Str("yes".into()))]).expect("second voter");
    assert_eq!(h.state.map_get("tallies", &[Value::Str("yes".into())]), Some(uint(2)));

    // After finalisation nobody votes.
    h.call(addr(9), 0, "Finalize", &[]).expect("officer closes");
    let err = h.call(addr(3), 0, "Vote", &[("option", Value::Str("yes".into()))]).unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("ElectionClosed")));
}

#[test]
fn bookstore_stock_depletes() {
    let mut h = Harness::new("Bookstore", vec![("store_owner".into(), Value::address(addr(9)))]);
    h.call(addr(9), 0, "AddBook", &[
        ("book_id", Value::Str("rust-book".into())),
        ("price", uint(10)),
        ("stock", uint(1)),
    ])
    .expect("stock the shelf");

    // Underpaying fails.
    let err = h
        .call(addr(1), 5, "BuyBook", &[("book_id", Value::Str("rust-book".into()))])
        .unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("PaymentTooLow")));

    let out = h
        .call(addr(1), 10, "BuyBook", &[("book_id", Value::Str("rust-book".into()))])
        .expect("buy");
    assert!(out.accepted, "payment accepted");

    let err = h
        .call(addr(2), 10, "BuyBook", &[("book_id", Value::Str("rust-book".into()))])
        .unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("OutOfStock")));
}

#[test]
fn multisig_requires_enough_confirmations() {
    let mut h = Harness::new("Multisig", vec![("founder".into(), Value::address(addr(9)))]);
    for owner in [1, 2] {
        h.call(addr(9), 0, "AddOwner", &[("new_owner", Value::address(addr(owner)))])
            .expect("add owner");
    }
    h.call(addr(1), 0, "SubmitTransaction", &[
        ("tx_id", uint(1)),
        ("to", Value::address(addr(7))),
        ("amount", uint(123)),
    ])
    .expect("submit");

    // One confirmation is not enough (required = 2).
    h.call(addr(1), 0, "ConfirmTransaction", &[("tx_id", uint(1))]).expect("confirm 1");
    let err = h.call(addr(1), 0, "ExecuteTransaction", &[("tx_id", uint(1))]).unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("NotEnoughConfirmations")));

    // Double-confirm is rejected; the second owner tips it over.
    let err = h.call(addr(1), 0, "ConfirmTransaction", &[("tx_id", uint(1))]).unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("AlreadyConfirmed")));
    h.call(addr(2), 0, "ConfirmTransaction", &[("tx_id", uint(1))]).expect("confirm 2");
    let out = h.call(addr(2), 0, "ExecuteTransaction", &[("tx_id", uint(1))]).expect("execute");
    assert_eq!(out.messages[0].amount, 123);
    assert_eq!(out.messages[0].recipient, addr(7));
}

#[test]
fn zeecash_shield_and_unshield() {
    let mut h = Harness::new("Zeecash", vec![("init_owner".into(), Value::address(addr(9)))]);
    h.call(addr(9), 0, "Mint", &[("to", Value::address(addr(1))), ("amount", uint(100))])
        .expect("mint");
    h.call(addr(1), 0, "Shield", &[("secret", Value::Str("note1".into())), ("amount", uint(60))])
        .expect("shield");
    assert_eq!(h.state.map_get("balances", &[Value::address(addr(1))]), Some(uint(40)));
    assert_eq!(h.state.load("shielded_total"), Some(uint(60)));

    // Anyone knowing the secret can unshield — but only once.
    h.call(addr(2), 0, "Unshield", &[("secret", Value::Str("note1".into()))]).expect("unshield");
    assert_eq!(h.state.map_get("balances", &[Value::address(addr(2))]), Some(uint(60)));
    let err = h.call(addr(3), 0, "Unshield", &[("secret", Value::Str("note1".into()))]).unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("NoNote")));
}

#[test]
fn auction_bids_must_increase() {
    let node = Value::ByStr(vec![7u8; 32]);
    let mut h =
        Harness::new("AuctionRegistrar", vec![("registrar_owner".into(), Value::address(addr(9)))]);
    h.call(addr(9), 0, "StartAuction", &[("node", node.clone()), ("end_block", Value::BNum(100))])
        .expect("start");
    h.call(addr(1), 200, "Bid", &[("node", node.clone())]).expect("first bid");
    let err = h.call(addr(2), 150, "Bid", &[("node", node.clone())]).unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("BidTooLow")));
    h.call(addr(2), 300, "Bid", &[("node", node.clone())]).expect("higher bid");
    assert_eq!(h.state.map_get("high_bidders", &[node]), Some(Value::address(addr(2))));
}

#[test]
fn cryptoman_commit_reveal() {
    let mut h = Harness::new("Cryptoman", vec![]);
    let secret = Value::Str("hunter2".into());
    let commitment = Value::ByStr(scilla::builtins::digest32(&secret));
    h.call(addr(1), 0, "Commit", &[("commitment", commitment.clone())]).expect("commit");
    let err = h.call(addr(1), 0, "Reveal", &[("secret", Value::Str("wrong".into()))]).unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("WrongSecret")));
    h.call(addr(1), 0, "Reveal", &[("secret", secret)]).expect("reveal");
    assert_eq!(h.state.map_get("winners", &[commitment]), Some(Value::address(addr(1))));
}

#[test]
fn hello_world_events() {
    let mut h = Harness::new("HelloWorld", vec![("hello_owner".into(), Value::address(addr(9)))]);
    h.call(addr(9), 0, "SetHello", &[("msg", Value::Str("hei".into()))]).expect("set");
    assert_eq!(h.state.load("welcome_msg"), Some(Value::Str("hei".into())));
    let out = h.call(addr(1), 0, "GetHello", &[]).expect("get");
    assert_eq!(out.events.len(), 1);
}

#[test]
fn xsgd_blacklist_blocks_transfers() {
    let mut h = Harness::new(
        "XSGD",
        vec![
            ("init_owner".into(), Value::address(addr(9))),
            ("proxy".into(), Value::address(addr(8))),
        ],
    );
    h.call(addr(9), 0, "Mint", &[("to", Value::address(addr(1))), ("amount", uint(100))])
        .expect("mint");
    h.call(addr(9), 0, "Blacklist", &[("account", Value::address(addr(1)))]).expect("blacklist");
    let err = h
        .call(addr(1), 0, "Transfer", &[("to", Value::address(addr(2))), ("amount", uint(10))])
        .unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("Blacklisted")));
    h.call(addr(9), 0, "Unblacklist", &[("account", Value::address(addr(1)))]).expect("unblacklist");
    h.call(addr(1), 0, "Transfer", &[("to", Value::address(addr(2))), ("amount", uint(10))])
        .expect("transfer after unblacklisting");

    // Pause blocks everyone.
    h.call(addr(9), 0, "Pause", &[]).expect("pause");
    let err = h
        .call(addr(1), 0, "Transfer", &[("to", Value::address(addr(2))), ("amount", uint(1))])
        .unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("Paused")));
}

#[test]
fn ud_registry_full_domain_lifecycle() {
    let node = Value::ByStr(vec![3u8; 32]);
    let mut h = Harness::new(
        "UD_registry",
        vec![
            ("initial_admin".into(), Value::address(addr(9))),
            ("initial_root".into(), Value::ByStr(vec![0u8; 32])),
        ],
    );
    h.call(addr(9), 0, "Bestow", &[
        ("node", node.clone()),
        ("new_owner", Value::address(addr(1))),
        ("resolver", Value::address(addr(5))),
    ])
    .expect("bestow");
    // Double bestow fails.
    let err = h
        .call(addr(9), 0, "Bestow", &[
            ("node", node.clone()),
            ("new_owner", Value::address(addr(2))),
            ("resolver", Value::address(addr(5))),
        ])
        .unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("DomainTaken")));

    // Only the owner configures.
    let err = h
        .call(addr(2), 0, "Configure", &[("node", node.clone()), ("resolver", Value::address(addr(6)))])
        .unwrap_err();
    assert!(matches!(err, ExecError::Thrown(m) if m.contains("SenderNotOwner")));
    h.call(addr(1), 0, "Configure", &[("node", node.clone()), ("resolver", Value::address(addr(6)))])
        .expect("configure");
    h.call(addr(1), 0, "ConfigureRecord", &[
        ("node", node.clone()),
        ("rec_key", Value::Str("crypto.ZIL.address".into())),
        ("rec_value", Value::Str("zil1xyz".into())),
    ])
    .expect("record");

    // Transfer moves ownership (DS-only in the sharded setting, but the
    // interpreter semantics are ordinary).
    h.call(addr(1), 0, "TransferDomain", &[("node", node.clone()), ("new_owner", Value::address(addr(2)))])
        .expect("transfer");
    assert_eq!(h.state.map_get("registry_owners", &[node]), Some(Value::address(addr(2))));
}
