//! The CoSplit command-line tool (paper Fig. 11, offline mode).
//!
//! A contract developer runs the analyser over a Scilla source file, asks
//! the sharding query solver about a selection of transitions, and receives
//! the sharding signature to submit with the deployment transaction.
//!
//! ```text
//! cosplit <file.scilla | corpus:Name> [--transitions T1,T2,…]
//!         [--weak-reads f1,f2,… | --accept-stale]
//!         [--summaries] [--json] [--repair] [--ge] [--metrics <path>]
//! cosplit lint <file.scilla | corpus:Name>     # a.k.a. `cosplit audit …`
//! ```
//!
//! `cosplit lint` (alias `cosplit audit`) runs the contract lint pass over
//! the analysed summaries and prints span-bearing findings: state that is
//! written but never read back, transitions whose summary collapsed to ⊤
//! (with the offending statement named), pseudofields no transition can
//! reach, and `accept`s whose funds never influence state or outgoing
//! messages. Findings are advisory — the exit code stays 0 — but each one
//! increments the `cosplit.lint.findings` telemetry counter so CI can gate
//! on the metrics snapshot.
//!
//! `cosplit matrix` builds the pairwise transition-commutativity matrix
//! (conflict matrix) from the Fig-6 footprints and prints it as a grid —
//! `.` commute, `?` commute unless keys alias, `X` conflict — followed by
//! the conditional pairs' key clashes. With `--json` it prints the
//! matrix's JSON wire form instead.
//!
//! `--metrics <path>` (or the `COSPLIT_METRICS` environment variable) writes
//! the telemetry snapshot of the run as JSON on exit.

use cosplit_analysis::audit::lint_contract;
use cosplit_analysis::conflict::{ConflictMatrix, Verdict};
use cosplit_analysis::ge::ge_stats;
use cosplit_analysis::repair::repair_contract;
use cosplit_analysis::signature::WeakReads;
use cosplit_analysis::solver::AnalyzedContract;
use std::collections::BTreeSet;
use std::process::ExitCode;

struct Args {
    source_arg: String,
    transitions: Option<Vec<String>>,
    weak_reads: WeakReads,
    summaries: bool,
    json: bool,
    repair: bool,
    ge: bool,
    lint: bool,
    matrix: bool,
    metrics: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: cosplit <file.scilla | corpus:Name> [--transitions T1,T2,...]\n\
         \x20             [--weak-reads f1,f2,... | --accept-stale]\n\
         \x20             [--summaries] [--json] [--repair] [--ge]\n\
         \x20      cosplit lint <file.scilla | corpus:Name>   (alias: audit)\n\
         \x20      cosplit matrix <file.scilla | corpus:Name> [--json]\n\
         \n\
         \x20 --transitions   transitions to shard (default: all)\n\
         \x20 --weak-reads    fields whose reads may be stale (paper §4.2.3)\n\
         \x20 --accept-stale  accept every weak read the algorithm requires\n\
         \x20 --summaries     print per-transition effect summaries (Fig. 8)\n\
         \x20 --json          print the signature's JSON wire form\n\
         \x20 --repair        attempt the §6 compare-and-swap repair first\n\
         \x20 --ge            print good-enough signature statistics (Fig. 13)\n\
         \x20 --lint          run the contract lint pass (same as `lint` mode)\n\
         \x20 --matrix        print the conflict matrix (same as `matrix` mode)\n\
         \x20 --metrics       write the run's telemetry snapshot (JSON) to a file\n\
         \x20                 (also COSPLIT_METRICS=<path>)"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        source_arg: String::new(),
        transitions: None,
        weak_reads: WeakReads::Fields(BTreeSet::new()),
        summaries: false,
        json: false,
        repair: false,
        ge: false,
        lint: false,
        matrix: false,
        metrics: std::env::var("COSPLIT_METRICS").ok(),
    };
    let mut it = std::env::args().skip(1);
    let mut first_positional = true;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--transitions" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.transitions = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--weak-reads" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.weak_reads =
                    WeakReads::Fields(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--accept-stale" => args.weak_reads = WeakReads::AcceptAll,
            "--metrics" => args.metrics = Some(it.next().unwrap_or_else(|| usage())),
            "--summaries" => args.summaries = true,
            "--json" => args.json = true,
            "--repair" => args.repair = true,
            "--ge" => args.ge = true,
            "--lint" => args.lint = true,
            "--matrix" => args.matrix = true,
            "--help" | "-h" => usage(),
            // A leading `lint`/`audit`/`matrix` word selects the mode; the
            // next positional argument is then the contract source.
            "lint" | "audit" if first_positional => {
                args.lint = true;
                first_positional = false;
            }
            "matrix" if first_positional => {
                args.matrix = true;
                first_positional = false;
            }
            other if args.source_arg.is_empty() && !other.starts_with('-') => {
                args.source_arg = other.to_string();
                first_positional = false;
            }
            _ => usage(),
        }
    }
    if args.source_arg.is_empty() {
        usage();
    }
    args
}

fn load_source(arg: &str) -> Result<String, String> {
    if let Some(name) = arg.strip_prefix("corpus:") {
        return scilla::corpus::get(name)
            .map(|e| e.source.to_string())
            .ok_or_else(|| format!("unknown corpus contract '{name}'"));
    }
    std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))
}

fn main() -> ExitCode {
    let args = parse_args();
    let metrics = args.metrics.clone();
    let code = run(args);
    if let Some(path) = metrics {
        let json = telemetry::registry().snapshot().to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    code
}

fn run(args: Args) -> ExitCode {
    let source = match load_source(&args.source_arg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    // The miner-side pipeline: parse → typecheck.
    let module = match scilla::parser::parse_module(&source) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut checked = match scilla::typechecker::typecheck(module) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.repair {
        match repair_contract(&checked) {
            Ok(outcome) => {
                for r in &outcome.reports {
                    for p in &r.added_params {
                        eprintln!(
                            "repaired {}: added parameter '{}' : {} (compare-and-swap for '{}')",
                            r.transition, p.param, p.ty, p.replaces_binder
                        );
                    }
                }
                if outcome.reports.is_empty() {
                    eprintln!("repair: nothing to do");
                }
                checked = outcome.checked;
            }
            Err(e) => {
                eprintln!("error: repair produced an ill-typed contract: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let analyzed = AnalyzedContract::analyze(&checked);

    if args.lint {
        let findings = lint_contract(&checked, &analyzed);
        let counter = telemetry::registry().counter(telemetry::names::LINT_FINDINGS);
        for f in &findings {
            counter.inc();
            println!("{f}");
        }
        if findings.is_empty() {
            println!("{}: lint clean ({} transitions)", analyzed.name, analyzed.summaries.len());
        } else {
            println!(
                "{}: {} lint finding{}",
                analyzed.name,
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
        }
        return ExitCode::SUCCESS;
    }

    if args.matrix {
        let matrix = ConflictMatrix::build(&analyzed.name, &analyzed.summaries);
        if args.json {
            println!(
                "{}",
                cosplit_analysis::conflict::wire::matrix_to_value(&matrix)
            );
            return ExitCode::SUCCESS;
        }
        print!("{}", matrix.render());
        let mut conditional = Vec::new();
        for i in 0..matrix.len() {
            for j in i..matrix.len() {
                if let Verdict::CommuteUnless(clashes) = matrix.verdict_at(i, j) {
                    conditional.push((i, j, clashes));
                }
            }
        }
        if !conditional.is_empty() {
            println!("conditional pairs:");
            for (i, j, clashes) in conditional {
                println!("  {} / {}:", matrix.transitions[i], matrix.transitions[j]);
                for c in clashes {
                    println!("    unless {c}");
                }
            }
        }
        println!(
            "density: {:.0}% conflict, {:.0}% conditional",
            matrix.conflict_density() * 100.0,
            matrix.conditional_density() * 100.0
        );
        return ExitCode::SUCCESS;
    }

    if args.summaries {
        for s in &analyzed.summaries {
            println!("{s}");
        }
    }

    if args.ge {
        let stats = ge_stats(&analyzed);
        println!("transitions:           {}", stats.transitions);
        println!("largest GE signature:  {} {:?}", stats.largest, stats.largest_selection);
        println!("maximal GE signatures: {}", stats.maximal_count);
        println!("GE selections total:   {}", stats.ge_count);
        return ExitCode::SUCCESS;
    }

    let selection = args.transitions.unwrap_or_else(|| analyzed.transition_names());
    let signature = analyzed.query(&selection, &args.weak_reads);

    if args.json {
        println!("{}", signature.to_json());
        return ExitCode::SUCCESS;
    }

    println!("contract {}:", analyzed.name);
    for t in &signature.transitions {
        println!("  transition {}:", t.name);
        if t.constraints.is_empty() {
            println!("    (no constraints)");
        }
        for c in &t.constraints {
            println!("    {c}");
        }
    }
    println!("  joins:");
    for (f, j) in &signature.joins {
        println!("    {f} ⊎ {j:?}");
    }
    if !signature.weak_reads.is_empty() {
        println!("  weak reads required: {:?}", signature.weak_reads);
    }
    ExitCode::SUCCESS
}
