//! Integration tests for the structured-tracing subsystem: span-tree
//! well-formedness, cross-thread adoption, lifecycle assembly, recorder
//! bounds, the JSON validator, and the disabled-path zero-record audit.
//!
//! Tracing state (the enable flag, the global recorder, the drop counters)
//! is process-global, so every test serialises on one mutex and resets the
//! recorder around itself — same idiom as the chain crate's `state_cow.rs`.

use std::sync::{Mutex, MutexGuard, OnceLock};
use telemetry::trace::{self, RecordKind, TraceRecord};
use telemetry::{names, registry};

fn trace_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    trace::set_tracing(true);
    trace::recorder().configure(1 << 18, 64);
    trace::recorder().clear();
    guard
}

fn find<'a>(records: &'a [TraceRecord], name: &str) -> &'a TraceRecord {
    records.iter().find(|r| r.name == name).unwrap_or_else(|| panic!("no record '{name}'"))
}

#[test]
fn nested_spans_link_parent_and_child() {
    let _guard = trace_guard();
    {
        let mut outer = telemetry::span!("test.outer");
        outer.attr("k", "v");
        {
            let _inner = telemetry::span!("test.inner");
        }
    }
    trace::set_tracing(false);
    let records = trace::recorder().drain();
    trace::validate_span_tree(&records).expect("well-formed tree");

    let outer = find(&records, "test.outer");
    let inner = find(&records, "test.inner");
    assert_eq!(outer.parent, 0, "outer span is a root");
    assert_eq!(inner.parent, outer.id, "inner span links to the enclosing guard");
    assert_eq!(outer.attr("k"), Some("v"));
    assert!(inner.start_micros >= outer.start_micros);
    assert!(inner.end_micros() <= outer.end_micros());
}

#[test]
fn sibling_spans_share_a_parent_and_instants_nest() {
    let _guard = trace_guard();
    {
        let _outer = telemetry::span!("test.root");
        {
            let _a = telemetry::span!("test.a");
            trace::instant_with("test.mark", |attrs| attrs.push(("tx", "7".to_string())));
        }
        let _b = telemetry::span!("test.b");
    }
    trace::set_tracing(false);
    let records = trace::recorder().drain();
    trace::validate_span_tree(&records).expect("well-formed tree");

    let root = find(&records, "test.root");
    let a = find(&records, "test.a");
    let b = find(&records, "test.b");
    let mark = find(&records, "test.mark");
    assert_eq!(a.parent, root.id);
    assert_eq!(b.parent, root.id);
    assert_eq!(mark.parent, a.id, "instant nests under the innermost open span");
    assert_eq!(mark.kind, RecordKind::Instant);
    assert_eq!(mark.attr("tx"), Some("7"));
}

#[test]
fn adopt_parent_stitches_spawned_threads_under_the_spawner() {
    let _guard = trace_guard();
    {
        let outer = telemetry::span!("test.spawner");
        let parent = outer.trace_id();
        assert_ne!(parent, 0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(move || {
                    let _adopt = trace::adopt_parent(parent);
                    let _w = telemetry::span!("test.worker");
                });
            }
        });
    }
    trace::set_tracing(false);
    let records = trace::recorder().drain();
    trace::validate_span_tree(&records).expect("cross-thread tree is well-formed");

    let outer = find(&records, "test.spawner");
    let workers: Vec<&TraceRecord> = records.iter().filter(|r| r.name == "test.worker").collect();
    assert_eq!(workers.len(), 2);
    for w in workers {
        assert_eq!(w.parent, outer.id, "worker adopted the spawner as parent");
        assert!(w.start_micros >= outer.start_micros && w.end_micros() <= outer.end_micros());
    }
}

fn rec(id: u64, parent: u64, start: u64, dur: u64) -> TraceRecord {
    TraceRecord {
        id,
        parent,
        name: "synthetic",
        kind: RecordKind::Span,
        thread: 1,
        epoch: 0,
        start_micros: start,
        dur_micros: dur,
        attrs: Vec::new(),
    }
}

#[test]
fn validator_rejects_malformed_forests() {
    // Missing parent.
    assert!(trace::validate_span_tree(&[rec(2, 1, 0, 10)]).is_err());
    // Duplicate ids.
    assert!(trace::validate_span_tree(&[rec(1, 0, 0, 10), rec(1, 0, 5, 1)]).is_err());
    // Zero id.
    assert!(trace::validate_span_tree(&[rec(0, 0, 0, 10)]).is_err());
    // Child interval escaping the parent's.
    assert!(trace::validate_span_tree(&[rec(1, 0, 10, 10), rec(2, 1, 15, 10)]).is_err());
    assert!(trace::validate_span_tree(&[rec(1, 0, 10, 10), rec(2, 1, 5, 2)]).is_err());
    // Parent cycle.
    let mut x = rec(1, 2, 0, 10);
    let mut y = rec(2, 1, 0, 10);
    x.parent = 2;
    y.parent = 1;
    assert!(trace::validate_span_tree(&[x, y]).is_err());
    // A proper forest passes.
    assert!(trace::validate_span_tree(&[rec(1, 0, 0, 10), rec(2, 1, 2, 3), rec(3, 0, 20, 5)])
        .is_ok());
}

#[test]
fn lifecycles_assemble_dispatch_and_execution_stages() {
    let attr = |k: &'static str, v: &str| (k, v.to_string());
    let mut dispatch = rec(1, 0, 100, 0);
    dispatch.name = names::TX_DISPATCH;
    dispatch.kind = RecordKind::Instant;
    dispatch.attrs =
        vec![attr("tx", "42"), attr("reason", "ownership"), attr("assign", "shard1")];
    let mut exec = rec(2, 0, 200, 50);
    exec.name = names::TX_EXEC;
    exec.attrs = vec![attr("tx", "42"), attr("role", "shard1"), attr("status", "success")];
    let mut failed = rec(3, 0, 300, 10);
    failed.name = names::TX_EXEC;
    failed.attrs = vec![attr("tx", "43"), attr("role", "ds"), attr("status", "failed:no gas")];

    let lifecycles = trace::build_lifecycles(&[dispatch, exec, failed]);
    assert_eq!(lifecycles.len(), 2);

    let committed = &lifecycles[0];
    assert_eq!(committed.tx_id, 42);
    assert_eq!(committed.dispatch_reason(), Some("ownership"));
    assert_eq!(committed.assignment(), Some("shard1"));
    assert_eq!(committed.outcome(), Some("success"));
    assert!(committed.committed());
    assert!(committed.complete_commit_chain());
    assert_eq!(committed.hops(), 0);

    // No dispatch stage and a failed outcome: neither committed nor complete.
    let aborted = &lifecycles[1];
    assert_eq!(aborted.tx_id, 43);
    assert!(!aborted.committed());
    assert!(!aborted.complete_commit_chain());
    assert_eq!(aborted.outcome(), Some("failed:no gas"));
}

#[test]
fn recorder_capacity_evictions_are_bounded_and_counted() {
    let _guard = trace_guard();
    trace::recorder().configure(16, 64);
    let before = registry().snapshot();
    for i in 0..100 {
        trace::instant_with("test.flood", |attrs| attrs.push(("i", i.to_string())));
    }
    let delta = registry().snapshot().diff(&before);
    trace::set_tracing(false);
    let records = trace::recorder().drain();
    trace::recorder().configure(1 << 18, 64);

    assert!(records.len() <= 16, "capacity bounds the buffer ({} records)", records.len());
    assert_eq!(delta.counter(names::TRACE_RECORDS), 100, "every write was counted");
    assert_eq!(
        delta.counter(names::TRACE_DROPPED),
        100 - records.len() as u64,
        "every eviction was counted"
    );
    // The newest record survived.
    assert!(records.iter().any(|r| r.attr("i") == Some("99")));
}

#[test]
fn epoch_retention_prunes_old_epochs_and_counts_drops() {
    let _guard = trace_guard();
    trace::recorder().configure(1 << 18, 4);
    let before = registry().snapshot();
    trace::begin_epoch(1);
    trace::instant_with("test.old", |_| {});
    trace::begin_epoch(2);
    trace::instant_with("test.older", |_| {});
    // Epoch 10 with a 4-epoch window retains epochs 7..=10 only.
    trace::begin_epoch(10);
    trace::instant_with("test.fresh", |_| {});
    let delta = registry().snapshot().diff(&before);
    trace::set_tracing(false);
    let records = trace::recorder().drain();
    trace::recorder().configure(1 << 18, 64);

    assert_eq!(records.len(), 1, "only the in-window record survives");
    assert_eq!(records[0].name, "test.fresh");
    assert_eq!(records[0].epoch, 10);
    assert_eq!(delta.counter(names::TRACE_DROPPED), 2, "pruned records are counted");
}

#[test]
fn disabled_tracing_records_nothing() {
    let _guard = trace_guard();
    trace::set_tracing(false);
    let before = registry().snapshot();
    {
        let mut s = telemetry::span!("test.dark");
        s.attr("expensive", "ignored");
        assert_eq!(s.trace_id(), 0, "no span id is allocated while tracing is off");
        trace::instant_with("test.dark_instant", |_| panic!("closure must not run"));
        trace::begin_epoch(99);
    }
    let delta = registry().snapshot().diff(&before);
    assert!(trace::recorder().is_empty(), "nothing reached the recorder");
    assert_eq!(delta.counter(names::TRACE_RECORDS), 0);
    assert_eq!(delta.counter(names::TRACE_DROPPED), 0);
    assert_eq!(trace::current_span(), 0, "span stack stays empty");
}

#[test]
fn exporters_emit_valid_json() {
    let _guard = trace_guard();
    {
        let mut outer = telemetry::span!("test.export");
        outer.attr("quote", "say \"hi\"\n\\done");
        trace::instant_with(names::TX_DISPATCH, |attrs| {
            attrs.push(("tx", "3".to_string()));
            attrs.push(("reason", "ownership".to_string()));
        });
        let mut exec = telemetry::span!(names::TX_EXEC);
        exec.attr("tx", 3);
        exec.attr("role", "shard0");
        exec.attr("status", "success");
    }
    trace::set_tracing(false);
    let records = trace::recorder().drain();

    let chrome = trace::chrome_trace_json(&records);
    trace::validate_json(&chrome).expect("chrome export parses");
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"ph\":\"X\"") && chrome.contains("\"ph\":\"i\""));

    let lifecycles = trace::build_lifecycles(&records);
    assert_eq!(lifecycles.len(), 1);
    assert!(lifecycles[0].complete_commit_chain());
    trace::validate_json(&trace::lifecycle_json(&lifecycles)).expect("lifecycle export parses");
}

#[test]
fn json_validator_accepts_and_rejects() {
    for good in [
        "null",
        "true",
        "-12.5e3",
        "\"a \\\"quoted\\\" string\\n\"",
        "[1, 2, {\"k\": [false, null]}]",
        "{\"a\": {\"b\": []}, \"c\": \"\\u00e9\"}",
    ] {
        trace::validate_json(good).unwrap_or_else(|e| panic!("rejected {good}: {e}"));
    }
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\" 1}",
        "{'a': 1}",
        "[1] trailing",
        "\"unterminated",
        "01",
        "{\"a\": \\u12}",
    ] {
        assert!(trace::validate_json(bad).is_err(), "accepted malformed JSON: {bad}");
    }
}

#[test]
fn event_buffer_drops_are_counted() {
    let _guard = trace_guard();
    let reg = registry();
    reg.drain_events();
    let before = reg.snapshot();
    for i in 0..10_000 {
        reg.emit("test.spam", &[("i", &i.to_string())]);
    }
    let delta = reg.snapshot().diff(&before);
    let events = reg.drain_events();
    assert!(events.len() < 10_000, "event buffer is bounded");
    assert_eq!(
        delta.counter(names::EVENTS_DROPPED),
        10_000 - events.len() as u64,
        "dropped events are accounted in telemetry.events.dropped"
    );
    // The newest event survived the drops.
    assert_eq!(events.last().unwrap().fields[0].1, "9999");
}
