//! Criterion benches for the hot-path layers: symbol interning, compiled
//! vs AST transition dispatch, and batched vs per-transaction delta
//! application (the work-stealing pool's commit-log fold).

use chain::address::Address;
use chain::delta::{IntDelta, StateDelta};
use chain::state::GlobalState;
use criterion::{criterion_group, criterion_main, env_or, Criterion};
use scilla::gas::GasMeter;
use scilla::interpreter::{CompiledContract, ExecMode, TransitionContext};
use scilla::state::InMemoryState;
use scilla::value::Value;
use std::sync::Arc;

fn bench_intern(c: &mut Criterion) {
    // Pre-intern so the bench measures the steady-state lookup, not the
    // one-time insertion.
    let names: Vec<String> = (0..64).map(|i| format!("field_{i}")).collect();
    for n in &names {
        scilla::intern::intern(n);
    }
    c.bench_function("intern/lookup-hit", |b| {
        let mut i = 0;
        b.iter(|| {
            let s = scilla::intern::intern(&names[i % names.len()]);
            i += 1;
            s
        })
    });
    let syms: Vec<scilla::intern::Sym> =
        names.iter().map(|n| scilla::intern::intern(n)).collect();
    c.bench_function("intern/sym-as-str", |b| {
        let mut i = 0;
        b.iter(|| {
            let s = syms[i % syms.len()].as_str();
            i += 1;
            s.len()
        })
    });
}

type TokenFixture = (CompiledContract, Vec<(String, Value)>, InMemoryState, Vec<[u8; 20]>);

/// A minted FungibleToken world at the scilla layer, shared by the
/// dispatch benches.
fn token_fixture() -> TokenFixture {
    let entry = scilla::corpus::get("FungibleToken").expect("corpus");
    let contract = scilla::compile_str(entry.source).expect("compiles");
    contract.precompile();
    let owner = [9u8; 20];
    let params = vec![
        ("contract_owner".to_string(), Value::address(owner)),
        ("name".to_string(), Value::Str("Bench".into())),
        ("symbol".to_string(), Value::Str("B".into())),
        ("init_supply".to_string(), Value::Uint(128, 0)),
    ];
    let mut state = InMemoryState::from_fields(contract.init_fields(&params).expect("init"));
    let users: Vec<[u8; 20]> = (0..16u8).map(|i| [i + 1; 20]).collect();
    for u in &users {
        let ctx = TransitionContext {
            sender: owner,
            origin: owner,
            amount: 0,
            this_address: [0xCC; 20],
            block_number: 1,
        };
        let mut gas = GasMeter::new(u64::MAX);
        contract
            .execute_mode(
                &mut state,
                "Mint",
                &[("to".into(), Value::address(*u)), ("amount".into(), Value::Uint(128, 1 << 40))],
                &params,
                &ctx,
                &mut gas,
                None,
                ExecMode::Auto,
            )
            .expect("mint");
    }
    (contract, params, state, users)
}

fn bench_dispatch(c: &mut Criterion) {
    let (contract, params, state, users) = token_fixture();
    let run = |mode: ExecMode, st: &mut InMemoryState, i: usize| {
        let from = users[i % users.len()];
        let to = users[(i + 1) % users.len()];
        let ctx = TransitionContext {
            sender: from,
            origin: from,
            amount: 0,
            this_address: [0xCC; 20],
            block_number: 2,
        };
        let mut gas = GasMeter::new(u64::MAX);
        contract
            .execute_mode(
                st,
                "Transfer",
                &[("to".into(), Value::address(to)), ("amount".into(), Value::Uint(128, 1))],
                &params,
                &ctx,
                &mut gas,
                None,
                mode,
            )
            .expect("transfer")
    };

    c.bench_function("transition/ast-walker", |b| {
        let mut st = state.clone();
        let mut i = 0;
        b.iter(|| {
            i += 1;
            run(ExecMode::Ast, &mut st, i)
        })
    });
    c.bench_function("transition/compiled", |b| {
        let mut st = state.clone();
        let mut i = 0;
        b.iter(|| {
            i += 1;
            run(ExecMode::Compiled, &mut st, i)
        })
    });
}

/// Synthesises a commit log shaped like the work-stealing pool's: each
/// entry adds to a shared `IntMerge` counter, overwrites its own keyed
/// component, and credits a balance.
fn commit_log(entries: usize) -> Vec<StateDelta> {
    let contract = Address::from_index(7_000);
    (0..entries)
        .map(|i| {
            let mut d = StateDelta::new();
            let cd = d.contracts.entry(contract).or_default();
            cd.int_deltas.insert(
                ("total_supply".into(), vec![]),
                IntDelta { delta: 1, width: 128, signed: false },
            );
            cd.overwrites.insert(
                ("balances".into(), vec![Value::Uint(128, i as u128)]),
                Some(Value::Uint(128, (i * 3) as u128)),
            );
            d.balances.insert(Address::from_index(i as u64), 5);
            d
        })
        .collect()
}

fn bench_commit_fold(c: &mut Criterion) {
    let entries = env_or("BENCH_COMMITS", 256) as usize;
    let log = commit_log(entries);
    let base = {
        let mut s = GlobalState::new();
        let storage = Arc::make_mut(s.storage.entry(Address::from_index(7_000)).or_default());
        scilla::state::StateStore::store(storage, "total_supply", Value::Uint(128, 0));
        s
    };

    c.bench_function("commit-log/per-entry-apply", |b| {
        b.iter(|| {
            let mut st = base.clone();
            for d in &log {
                d.apply(&mut st).unwrap();
            }
            st
        })
    });
    c.bench_function("commit-log/composed-apply", |b| {
        b.iter(|| {
            let mut st = base.clone();
            StateDelta::compose_ref(log.iter()).apply(&mut st).unwrap();
            st
        })
    });
}

criterion_group!(benches, bench_intern, bench_dispatch, bench_commit_fold);
criterion_main!(benches);
