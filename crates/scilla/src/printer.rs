//! Pretty-printer: AST back to parseable source.
//!
//! Round-trip guarantee: for any module `m`, `parse(print(m))` yields an AST
//! equal to `m` up to source spans. Used by the contract-repair tool to show
//! developers the rewritten contract, and by round-trip tests over the whole
//! corpus.

use crate::ast::*;
use crate::types::Type;
use std::fmt::Write;

/// Pretty-prints a whole module.
pub fn print_module(m: &ContractModule) -> String {
    let mut out = String::new();
    if let Some(lib) = &m.library_name {
        let _ = writeln!(out, "library {lib}");
        for entry in &m.library {
            match entry {
                LibEntry::Let { name, ann, body } => match ann {
                    Some(t) => {
                        let _ = writeln!(out, "let {name} : {t} = {}", print_expr(body, 1));
                    }
                    None => let_line(&mut out, name, body),
                },
                LibEntry::TypeDef { name, ctors } => {
                    let _ = writeln!(out, "type {name} =");
                    for c in ctors {
                        let _ = write!(out, "  | {}", c.name);
                        if !c.arg_types.is_empty() {
                            let _ = write!(out, " of");
                            for t in &c.arg_types {
                                let _ = write!(out, " {}", atom_type(t));
                            }
                        }
                        let _ = writeln!(out);
                    }
                }
            }
        }
        out.push('\n');
    }
    let c = &m.contract;
    let _ = write!(out, "contract {} (", c.name);
    let params: Vec<String> = c.params.iter().map(|p| format!("{} : {}", p.name, p.ty)).collect();
    let _ = writeln!(out, "{})", params.join(", "));
    for f in &c.fields {
        let _ = writeln!(out, "field {} : {} = {}", f.name, f.ty, print_expr(&f.init, 1));
    }
    for t in &c.transitions {
        out.push('\n');
        let params: Vec<String> =
            t.params.iter().map(|p| format!("{} : {}", p.name, p.ty)).collect();
        let _ = writeln!(out, "transition {} ({})", t.name, params.join(", "));
        print_stmts(&mut out, &t.body, 1);
        let _ = writeln!(out, "end");
    }
    out
}

fn let_line(out: &mut String, name: &Ident, body: &Expr) {
    let _ = writeln!(out, "let {name} = {}", print_expr(body, 1));
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_stmts(out: &mut String, stmts: &[Stmt], level: usize) {
    for (i, s) in stmts.iter().enumerate() {
        indent(out, level);
        print_stmt(out, s, level);
        if i + 1 < stmts.len() {
            out.push(';');
        }
        out.push('\n');
    }
}

fn keys_str(keys: &[Ident]) -> String {
    keys.iter().map(|k| format!("[{k}]")).collect()
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Load { lhs, field } => {
            let _ = write!(out, "{lhs} <- {field}");
        }
        Stmt::Store { field, rhs } => {
            let _ = write!(out, "{field} := {rhs}");
        }
        Stmt::Bind { lhs, rhs } => {
            let _ = write!(out, "{lhs} = {}", print_expr(rhs, level + 1));
        }
        Stmt::MapUpdate { map, keys, rhs } => {
            let _ = write!(out, "{map}{} := {rhs}", keys_str(keys));
        }
        Stmt::MapGet { lhs, map, keys } => {
            let _ = write!(out, "{lhs} <- {map}{}", keys_str(keys));
        }
        Stmt::MapExists { lhs, map, keys } => {
            let _ = write!(out, "{lhs} <- exists {map}{}", keys_str(keys));
        }
        Stmt::MapDelete { map, keys } => {
            let _ = write!(out, "delete {map}{}", keys_str(keys));
        }
        Stmt::ReadBlockchain { lhs, query } => {
            let _ = write!(out, "{lhs} <- & {query}");
        }
        Stmt::Match { scrutinee, clauses, .. } => {
            let _ = write!(out, "match {scrutinee} with");
            for (pat, body) in clauses {
                out.push('\n');
                indent(out, level);
                let _ = write!(out, "| {} =>", print_pattern(pat));
                if !body.is_empty() {
                    out.push('\n');
                    print_stmts(out, body, level + 1);
                    // strip trailing newline added by print_stmts
                    out.pop();
                }
            }
            out.push('\n');
            indent(out, level);
            let _ = write!(out, "end");
        }
        Stmt::Accept(_) => {
            let _ = write!(out, "accept");
        }
        Stmt::Send { msgs } => {
            let _ = write!(out, "send {msgs}");
        }
        Stmt::Event { event } => {
            let _ = write!(out, "event {event}");
        }
        Stmt::Throw { exception, .. } => {
            match exception {
                Some(e) => {
                    let _ = write!(out, "throw {e}");
                }
                None => {
                    let _ = write!(out, "throw");
                }
            };
        }
    }
}

/// Pretty-prints a pattern.
pub fn print_pattern(p: &Pattern) -> String {
    match p {
        Pattern::Wildcard(_) => "_".into(),
        Pattern::Binder(i) => i.name.clone(),
        Pattern::Constructor(c, subs) => {
            let mut s = c.name.clone();
            for sub in subs {
                let rendered = print_pattern(sub);
                if matches!(sub, Pattern::Constructor(_, args) if !args.is_empty()) {
                    s.push_str(&format!(" ({rendered})"));
                } else {
                    s.push_str(&format!(" {rendered}"));
                }
            }
            s
        }
    }
}

fn atom_type(t: &Type) -> String {
    let rendered = t.to_string();
    let atomic = matches!(t, Type::Adt(_, args) if args.is_empty())
        || matches!(
            t,
            Type::Int(_) | Type::Uint(_) | Type::Str | Type::ByStr(_) | Type::BNum | Type::Message | Type::TypeVar(_)
        );
    if atomic {
        rendered
    } else {
        format!("({rendered})")
    }
}

/// Pretty-prints an expression at a given indent level.
#[allow(clippy::only_used_in_recursion)] // the level is part of the stable API
pub fn print_expr(e: &Expr, level: usize) -> String {
    match e {
        Expr::Lit(l, _) => match l {
            Literal::EmpMap(k, v) => format!("Emp {} {}", atom_type(k), atom_type(v)),
            other => other.to_string(),
        },
        Expr::Var(i) => i.name.clone(),
        Expr::Message(entries, _) => {
            let parts: Vec<String> = entries
                .iter()
                .map(|en| {
                    let v = match &en.value {
                        MsgValue::Var(i) => i.name.clone(),
                        MsgValue::Lit(l) => l.to_string(),
                    };
                    format!("{} : {v}", en.key)
                })
                .collect();
            format!("{{{}}}", parts.join("; "))
        }
        Expr::Constr { name, type_args, args } => {
            let mut s = name.name.clone();
            if !type_args.is_empty() {
                let ts: Vec<String> = type_args.iter().map(atom_type).collect();
                s.push_str(&format!(" {{{}}}", ts.join(" ")));
            }
            for a in args {
                s.push_str(&format!(" {a}"));
            }
            s
        }
        Expr::Builtin { op, args } => {
            let args: Vec<String> = args.iter().map(|a| a.name.clone()).collect();
            format!("builtin {op} {}", args.join(" "))
        }
        Expr::Let { bound, ann, rhs, body } => {
            let ann = ann.as_ref().map(|t| format!(" : {t}")).unwrap_or_default();
            format!(
                "let {bound}{ann} = {} in {}",
                print_expr(rhs, level),
                print_expr(body, level)
            )
        }
        Expr::Fun { param, param_type, body } => {
            format!("fun ({param} : {param_type}) => {}", print_expr(body, level))
        }
        Expr::App { func, args } => {
            let args: Vec<String> = args.iter().map(|a| a.name.clone()).collect();
            format!("{func} {}", args.join(" "))
        }
        Expr::Match { scrutinee, clauses, .. } => {
            let mut s = format!("match {scrutinee} with");
            for (pat, body) in clauses {
                s.push_str(&format!("\n| {} => {}", print_pattern(pat), print_expr(body, level)));
            }
            s.push_str("\nend");
            s
        }
        Expr::TFun { tvar, body, .. } => {
            format!("tfun '{tvar} => {}", print_expr(body, level))
        }
        Expr::Inst { target, type_args } => {
            let ts: Vec<String> = type_args.iter().map(atom_type).collect();
            format!("@{target} {}", ts.join(" "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    /// Structural equality up to spans: compare re-parsed ASTs of both.
    fn normalize(src: &str) -> String {
        let m = parse_module(src).unwrap();
        print_module(&m)
    }

    #[test]
    fn roundtrip_is_a_fixpoint_on_the_whole_corpus() {
        for entry in crate::corpus::all() {
            let printed = normalize(entry.source);
            let reparsed = parse_module(&printed)
                .unwrap_or_else(|e| panic!("{}: reprint does not parse: {e}\n{printed}", entry.name));
            let reprinted = print_module(&reparsed);
            assert_eq!(printed, reprinted, "{}: print ∘ parse not idempotent", entry.name);
        }
    }

    #[test]
    fn roundtrip_preserves_semantic_structure() {
        for entry in crate::corpus::all() {
            let original = parse_module(entry.source).unwrap();
            let reparsed = parse_module(&print_module(&original)).unwrap();
            assert_eq!(
                original.contract.transitions.len(),
                reparsed.contract.transitions.len(),
                "{}",
                entry.name
            );
            assert_eq!(original.contract.fields.len(), reparsed.contract.fields.len());
            for (a, b) in original.contract.transitions.iter().zip(&reparsed.contract.transitions) {
                assert_eq!(a.name.name, b.name.name);
                assert_eq!(a.params.len(), b.params.len());
                assert_eq!(a.body.len(), b.body.len(), "{}.{}", entry.name, a.name.name);
            }
        }
    }

    #[test]
    fn reprinted_corpus_still_typechecks() {
        for entry in crate::corpus::all() {
            let printed = normalize(entry.source);
            let reparsed = parse_module(&printed).unwrap();
            crate::typechecker::typecheck(reparsed)
                .unwrap_or_else(|e| panic!("{}: reprint fails typecheck: {e}", entry.name));
        }
    }
}
