//! Batch execution of transactions by a shard or by the DS committee.
//!
//! A shard executes its packet sequentially against the epoch-start state
//! snapshot, producing a `MicroBlock` with a [`StateDelta`] (paper Fig. 10).
//! Each transaction runs atomically through a journaled store: on failure
//! its writes are undone, gas is still charged. The DS committee reuses the
//! same executor after the shard deltas merge, with chained contract calls
//! enabled.

use crate::address::Address;
use crate::delta::{compute_int_delta, read_component, Component, ContractDelta, StateDelta};
use crate::dispatch::{component_shard, Assignment};
use crate::tx::{Transaction, TxKind};
use cosplit_analysis::audit::{audit_placement, audit_transition, AuditViolation};
use cosplit_analysis::signature::Join;
use scilla::builtins::uint_max;
use scilla::error::ExecError;
use scilla::gas::{GasMeter, COST_TX_BASE};
use scilla::interpreter::{OutMsg, TransitionContext};
use scilla::state::{InMemoryState, StateStore};
use scilla::trace::{DynamicFootprint, EffectTracer};
use scilla::value::Value;
use std::collections::{BTreeMap, BTreeSet};

use crate::state::{DeployedContract, GlobalState};

/// Execution parameters for one committee in one epoch.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Which committee this is.
    pub role: Assignment,
    /// Total number of transaction shards in the network.
    pub num_shards: u32,
    /// The committee's per-epoch gas budget.
    pub gas_limit: u64,
    /// Current block number.
    pub block_number: u64,
    /// Honour sharding signatures when computing deltas.
    pub use_cosplit: bool,
    /// Enforce the §6 overflow guard on `IntMerge` components.
    pub overflow_guard: bool,
    /// Allow messages to other contracts (DS committee only).
    pub allow_contract_msgs: bool,
    /// Run every transition with the effect tracer and audit its concrete
    /// footprint against the static summary and sharding discipline.
    pub audit: bool,
}

/// Outcome of one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxStatus {
    /// Committed with its state changes.
    Success,
    /// Committed, state rolled back, gas charged.
    Failed(String),
    /// Re-routed to the DS committee with no state change and no gas
    /// charged: either the §6 overflow guard fired, or the transaction
    /// turned out not to be single-contract (its message chain reaches
    /// another contract, paper §4.3).
    Rerouted(RerouteCause),
}

/// Why a shard handed a transaction to the DS committee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RerouteCause {
    /// The §6 overflow guard on an `IntMerge` component fired.
    OverflowGuard,
    /// The transaction sent a message to another contract.
    CrossContract,
}

/// Internal: distinguishes interpreter failures from reroute conditions.
enum CallError {
    Exec(ExecError),
    CrossContract,
}

impl From<ExecError> for CallError {
    fn from(e: ExecError) -> Self {
        CallError::Exec(e)
    }
}

/// A per-transaction receipt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// The transaction.
    pub tx_id: u64,
    /// What happened.
    pub status: TxStatus,
    /// Gas consumed.
    pub gas_used: u64,
    /// Events emitted (empty unless the transaction succeeded).
    pub events: Vec<Value>,
}

/// What one committee produced in one epoch (paper Fig. 10: MicroBlock +
/// StateDelta).
#[derive(Debug, Clone)]
pub struct MicroBlock {
    /// The producing committee.
    pub role: Assignment,
    /// Receipts for processed transactions, in order.
    pub receipts: Vec<Receipt>,
    /// Transactions that did not fit the gas budget (stay in the pool).
    pub deferred: Vec<Transaction>,
    /// Transactions the overflow guard rerouted to the DS committee.
    pub rerouted: Vec<Transaction>,
    /// The state delta.
    pub delta: StateDelta,
    /// Total gas consumed.
    pub gas_used: u64,
    /// Containment breaches found by the effect-trace auditor (empty unless
    /// `ExecutorConfig::audit` is set; non-empty means a static summary
    /// under-approximated a real execution).
    pub audit_violations: Vec<AuditViolation>,
}

impl MicroBlock {
    /// Number of successfully committed transactions.
    pub fn committed(&self) -> usize {
        self.receipts.iter().filter(|r| r.status == TxStatus::Success).count()
    }
}

/// Executes a batch of transactions for one committee against a state
/// snapshot.
pub fn execute_batch(
    cfg: &ExecutorConfig,
    snapshot: &GlobalState,
    txs: Vec<Transaction>,
) -> MicroBlock {
    let _span = telemetry::span!("chain.executor.batch_duration");
    let mut exec = Executor {
        cfg,
        snapshot,
        storages: BTreeMap::new(),
        balance: Ledger {
            snapshot,
            role: cfg.role,
            num_shards: cfg.num_shards,
            spent: BTreeMap::new(),
            deltas: BTreeMap::new(),
        },
        nonce_committed: BTreeMap::new(),
        receipts: Vec::new(),
        deferred: Vec::new(),
        rerouted: Vec::new(),
        gas_used: 0,
        violations: Vec::new(),
    };
    let mut over_budget = false;
    for tx in txs {
        if over_budget || exec.gas_used + tx.gas_limit > cfg.gas_limit {
            over_budget = true;
            exec.deferred.push(tx);
            continue;
        }
        exec.process(tx);
    }
    let mb = exec.finish();
    record_batch_metrics(&mb);
    mb
}

/// Records per-batch outcome counters and the delta-size histogram
/// (`chain.executor.*`).
fn record_batch_metrics(mb: &MicroBlock) {
    if !telemetry::enabled() {
        return;
    }
    let mut success = 0u64;
    let mut failed = 0u64;
    let mut rerouted = 0u64;
    for r in &mb.receipts {
        match &r.status {
            TxStatus::Success => success += 1,
            TxStatus::Failed(_) => failed += 1,
            TxStatus::Rerouted(cause) => {
                rerouted += 1;
                match cause {
                    RerouteCause::OverflowGuard => {
                        telemetry::counter!("chain.executor.reroute.overflow_guard").inc()
                    }
                    RerouteCause::CrossContract => {
                        telemetry::counter!("chain.executor.reroute.cross_contract").inc()
                    }
                }
            }
        }
    }
    telemetry::counter!("chain.executor.tx_status.success").add(success);
    telemetry::counter!("chain.executor.tx_status.failed").add(failed);
    telemetry::counter!("chain.executor.tx_status.rerouted").add(rerouted);
    telemetry::counter!("chain.executor.deferred").add(mb.deferred.len() as u64);
    telemetry::counter!("chain.executor.gas_used").add(mb.gas_used);
    telemetry::histogram!("chain.executor.delta_components", telemetry::SIZE_BUCKETS)
        .record(mb.delta.changed_components() as u64);
}

/// Per-shard balance ledger with slice limits (paper §4.2.2: "splitting a
/// user's balance across shards, with a larger fraction given to the shard
/// handling money transfers from that user").
struct Ledger<'a> {
    snapshot: &'a GlobalState,
    role: Assignment,
    num_shards: u32,
    /// Gross debits, checked against the slice.
    spent: BTreeMap<Address, u128>,
    /// Net changes, reported in the state delta.
    deltas: BTreeMap<Address, i128>,
}

impl Ledger<'_> {
    fn slice(&self, addr: &Address) -> u128 {
        let base = self.snapshot.balance(addr);
        match self.role {
            Assignment::Ds => base,
            Assignment::Shard(s) => {
                let n = self.num_shards as u128;
                if self.snapshot.is_contract(addr) {
                    // A contract's funds move only in its home shard
                    // (`ContractShard` constraint).
                    if addr.home_shard(self.num_shards) == s { base } else { 0 }
                } else {
                    // The away-slice is base/(4n); the home shard keeps the
                    // rest.
                    let away = base / (4 * n);
                    if addr.home_shard(self.num_shards) == s {
                        base - away * (n - 1)
                    } else {
                        away
                    }
                }
            }
        }
    }

    fn debit(&mut self, addr: Address, amount: u128) -> Result<(), String> {
        let spent = self.spent.get(&addr).copied().unwrap_or(0);
        if spent + amount > self.slice(&addr) {
            return Err(format!("insufficient balance slice for {addr}"));
        }
        self.spent.insert(addr, spent + amount);
        *self.deltas.entry(addr).or_insert(0) -= amount as i128;
        Ok(())
    }

    fn credit(&mut self, addr: Address, amount: u128) {
        *self.deltas.entry(addr).or_insert(0) += amount as i128;
    }

    fn undo(&mut self, checkpoint: (BTreeMap<Address, u128>, BTreeMap<Address, i128>)) {
        self.spent = checkpoint.0;
        self.deltas = checkpoint.1;
    }

    fn checkpoint(&self) -> (BTreeMap<Address, u128>, BTreeMap<Address, i128>) {
        (self.spent.clone(), self.deltas.clone())
    }
}

/// A shard's working copy of one contract's storage, with touched components.
struct ShardStorage {
    state: InMemoryState,
    touched: BTreeSet<Component>,
}

struct Executor<'a> {
    cfg: &'a ExecutorConfig,
    snapshot: &'a GlobalState,
    storages: BTreeMap<Address, ShardStorage>,
    balance: Ledger<'a>,
    nonce_committed: BTreeMap<Address, Vec<u64>>,
    receipts: Vec<Receipt>,
    deferred: Vec<Transaction>,
    rerouted: Vec<Transaction>,
    gas_used: u64,
    violations: Vec<AuditViolation>,
}

impl Executor<'_> {
    fn nonce_usable(&self, addr: &Address, nonce: u64) -> bool {
        let base_ok = self
            .snapshot
            .accounts
            .get(addr)
            .map(|a| a.nonces.is_usable(nonce))
            .unwrap_or(nonce > 0);
        base_ok
            && !self
                .nonce_committed
                .get(addr)
                .is_some_and(|ns| ns.contains(&nonce))
    }

    fn process(&mut self, tx: Transaction) {
        if !self.nonce_usable(&tx.sender, tx.nonce) {
            self.receipts.push(Receipt {
                tx_id: tx.id,
                status: TxStatus::Failed("nonce already used".into()),
                gas_used: 0,
                events: Vec::new(),
            });
            return;
        }

        // Reserve the full gas budget up front; refund after execution.
        let fee_reserve = tx.gas_limit as u128 * tx.gas_price;
        let ledger_cp = self.balance.checkpoint();
        if self.balance.debit(tx.sender, fee_reserve).is_err() {
            self.receipts.push(Receipt {
                tx_id: tx.id,
                status: TxStatus::Failed("cannot reserve gas".into()),
                gas_used: 0,
                events: Vec::new(),
            });
            return;
        }

        let (status, gas, events) = match &tx.kind {
            TxKind::Payment { to, amount } => {
                let gas = COST_TX_BASE;
                let status = match self.balance.debit(tx.sender, *amount) {
                    Ok(()) => {
                        self.balance.credit(*to, *amount);
                        TxStatus::Success
                    }
                    Err(e) => TxStatus::Failed(e),
                };
                (status, gas, Vec::new())
            }
            TxKind::Call { contract, transition, args, amount } => {
                self.run_call(&tx, *contract, transition, args, *amount)
            }
        };

        if let TxStatus::Rerouted(_) = status {
            // No gas charged; release the reservation and hand the
            // transaction to the DS committee.
            self.balance.undo(ledger_cp);
            self.rerouted.push(tx.clone());
            self.receipts.push(Receipt { tx_id: tx.id, status, gas_used: 0, events: Vec::new() });
            return;
        }

        // Refund unused gas.
        let actual_fee = gas as u128 * tx.gas_price;
        self.balance.credit(tx.sender, fee_reserve.saturating_sub(actual_fee));
        self.gas_used += gas;
        self.nonce_committed.entry(tx.sender).or_default().push(tx.nonce);
        self.receipts.push(Receipt { tx_id: tx.id, status, gas_used: gas, events });
    }

    fn run_call(
        &mut self,
        tx: &Transaction,
        contract: Address,
        transition: &str,
        args: &[(String, Value)],
        amount: u128,
    ) -> (TxStatus, u64, Vec<Value>) {
        let mut gas = GasMeter::new(tx.gas_limit.saturating_sub(COST_TX_BASE));
        let ledger_cp = self.balance.checkpoint();
        let mut journal = TxJournal::default();
        let mut events = Vec::new();
        let result = self.invoke(
            &mut journal,
            &mut gas,
            &mut events,
            tx.sender,
            tx.sender,
            contract,
            transition,
            args,
            amount,
            0,
        );
        let gas_total = COST_TX_BASE + gas.used();
        match result {
            Ok(()) => {
                if self.cfg.overflow_guard
                    && self.overflow_violation(&journal).is_some() {
                        journal.rollback(&mut self.storages);
                        self.balance.undo(ledger_cp);
                        return (TxStatus::Rerouted(RerouteCause::OverflowGuard), 0, Vec::new());
                    }
                journal.commit(&mut self.storages);
                (TxStatus::Success, gas_total, events)
            }
            Err(CallError::CrossContract) => {
                // The conservative single-contract check failed at runtime:
                // hand the whole transaction to the DS committee.
                journal.rollback(&mut self.storages);
                self.balance.undo(ledger_cp);
                (TxStatus::Rerouted(RerouteCause::CrossContract), 0, Vec::new())
            }
            Err(CallError::Exec(e)) => {
                journal.rollback(&mut self.storages);
                // The checkpoint was taken after the fee reservation, so
                // undoing restores exactly the reserved-fee ledger state.
                self.balance.undo(ledger_cp);
                (TxStatus::Failed(e.to_string()), gas_total, Vec::new())
            }
        }
    }

    /// Executes one transition invocation, recursing into messages sent to
    /// other contracts (DS committee only).
    #[allow(clippy::too_many_arguments)]
    fn invoke(
        &mut self,
        journal: &mut TxJournal,
        gas: &mut GasMeter,
        events: &mut Vec<Value>,
        origin: Address,
        sender: Address,
        contract: Address,
        transition: &str,
        args: &[(String, Value)],
        amount: u128,
        depth: u32,
    ) -> Result<(), CallError> {
        if depth > 4 {
            return Err(ExecError::BadInvocation("message chain too deep".into()).into());
        }
        let deployed = self
            .snapshot
            .contracts
            .get(&contract)
            .cloned()
            .ok_or_else(|| ExecError::BadInvocation(format!("no contract at {contract}")))?;

        self.ensure_storage(contract);
        let ctx = TransitionContext {
            sender: sender.0,
            origin: origin.0,
            amount,
            this_address: contract.0,
            block_number: self.cfg.block_number,
        };

        let (outcome, footprint) = {
            let storage = self.storages.get_mut(&contract).expect("ensured above");
            let mut store = JournaledStore { contract, inner: &mut storage.state, journal };
            if self.cfg.audit {
                let mut tracer = EffectTracer::new(transition);
                let out = deployed
                    .compiled
                    .execute_traced(
                        &mut store,
                        transition,
                        args,
                        &deployed.params,
                        &ctx,
                        gas,
                        &mut tracer,
                    )
                    .map_err(CallError::Exec)?;
                (out, Some(tracer.finish()))
            } else {
                let out = deployed
                    .compiled
                    .execute(&mut store, transition, args, &deployed.params, &ctx, gas)
                    .map_err(CallError::Exec)?;
                (out, None)
            }
        };
        if let Some(fp) = footprint {
            self.audit_invocation(&deployed, &fp, args, &ctx);
        }

        if outcome.accepted && amount > 0 {
            self.balance
                .debit(sender, amount)
                .map_err(|e| CallError::Exec(ExecError::InsufficientFunds(e)))?;
            self.balance.credit(contract, amount);
        }
        events.extend(outcome.events);

        for msg in outcome.messages {
            self.deliver(journal, gas, events, origin, contract, &msg, depth)?;
        }
        Ok(())
    }

    /// Audits one traced invocation: containment of the concrete footprint
    /// in the static summary, plus the sharding-placement discipline when
    /// this committee is a shard and the contract carries a signature.
    fn audit_invocation(
        &mut self,
        deployed: &DeployedContract,
        fp: &DynamicFootprint,
        args: &[(String, Value)],
        ctx: &TransitionContext,
    ) {
        if telemetry::enabled() {
            telemetry::counter!(telemetry::names::AUDIT_TRACED).inc();
        }
        let resolve = |name: &str| -> Option<Value> {
            match name {
                "_sender" => Some(Value::address(ctx.sender)),
                "_origin" => Some(Value::address(ctx.origin)),
                "_amount" => Some(Value::Uint(128, ctx.amount)),
                "_this_address" => Some(Value::address(ctx.this_address)),
                _ => args
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| v.clone())
                    .or_else(|| deployed.param(name).cloned()),
            }
        };
        let mut found = Vec::new();
        if let Some(summary) = deployed.summary(&fp.transition) {
            found.extend(audit_transition(fp, &summary, &resolve));
        }
        if self.cfg.use_cosplit {
            if let (Assignment::Shard(s), Some(sig)) = (self.cfg.role, &deployed.signature) {
                if let Some(tcons) = sig.transition(&fp.transition) {
                    let contract = deployed.address;
                    let shard_of = |field: &str, keys: &[Value]| {
                        component_shard(contract, field, keys, self.cfg.num_shards)
                    };
                    found.extend(audit_placement(fp, sig, tcons, s, &shard_of));
                }
            }
        }
        if telemetry::enabled() && !found.is_empty() {
            telemetry::counter!(telemetry::names::AUDIT_VIOLATION).add(found.len() as u64);
        }
        self.violations.extend(found);
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        journal: &mut TxJournal,
        gas: &mut GasMeter,
        events: &mut Vec<Value>,
        origin: Address,
        from_contract: Address,
        msg: &OutMsg,
        depth: u32,
    ) -> Result<(), CallError> {
        let recipient = Address(msg.recipient);
        if self.snapshot.is_contract(&recipient) {
            if !self.cfg.allow_contract_msgs {
                return Err(CallError::CrossContract);
            }
            let args: Vec<(String, Value)> =
                msg.params.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            return self.invoke(
                journal,
                gas,
                events,
                origin,
                from_contract,
                recipient,
                &msg.tag,
                &args,
                msg.amount,
                depth + 1,
            );
        }
        if msg.amount > 0 {
            self.balance
                .debit(from_contract, msg.amount)
                .map_err(|e| CallError::Exec(ExecError::InsufficientFunds(e)))?;
            self.balance.credit(recipient, msg.amount);
        }
        Ok(())
    }

    fn ensure_storage(&mut self, contract: Address) {
        self.storages.entry(contract).or_insert_with(|| ShardStorage {
            state: self.snapshot.storage.get(&contract).cloned().unwrap_or_default(),
            touched: BTreeSet::new(),
        });
    }

    /// The §6 overflow guard: for every `IntMerge` component the *current
    /// transaction* touched, the shard's cumulative positive delta (which
    /// includes earlier committed transactions, via the working state) must
    /// not exceed `⌊(MAX − v)/N⌋` of the epoch-start value `v`.
    fn overflow_violation(&self, journal: &TxJournal) -> Option<Component> {
        if matches!(self.cfg.role, Assignment::Ds) {
            return None;
        }
        for (addr, comp) in &journal.touched {
            {
                let Some(joins) = self.joins_of(addr) else { continue };
                let Some(storage) = self.storages.get(addr) else { continue };
                if joins.get(&comp.0) != Some(&Join::IntMerge) {
                    continue;
                }
                let base_storage = self.snapshot.storage.get(addr);
                let initial: u128 = match base_storage.and_then(|s| read_component(s, comp)) {
                    Some(Value::Uint(_, n)) => n,
                    None => 0,
                    // A non-integer epoch-start value cannot be guarded;
                    // force the conservative path.
                    Some(_) => return Some(comp.clone()),
                };
                let (now, width) = match read_component(&storage.state, comp) {
                    Some(Value::Uint(w, n)) => (n, w),
                    _ => continue,
                };
                let headroom = uint_max(width).saturating_sub(initial);
                let allowance = headroom / self.cfg.num_shards as u128;
                if now > initial && now - initial > allowance {
                    return Some(comp.clone());
                }
            }
        }
        None
    }

    fn joins_of(&self, contract: &Address) -> Option<&BTreeMap<String, Join>> {
        if !self.cfg.use_cosplit {
            return None;
        }
        self.snapshot
            .contracts
            .get(contract)
            .and_then(|d| d.signature.as_ref())
            .map(|s| &s.joins)
    }

    fn finish(mut self) -> MicroBlock {
        let mut delta = StateDelta::new();
        for (addr, storage) in &self.storages {
            if storage.touched.is_empty() {
                continue;
            }
            let joins = self.joins_of(addr).cloned().unwrap_or_default();
            let base = self.snapshot.storage.get(addr);
            let mut cd = ContractDelta::default();
            for comp in &storage.touched {
                let final_v = read_component(&storage.state, comp);
                let merge = joins.get(&comp.0) == Some(&Join::IntMerge);
                let delta = match (&final_v, merge) {
                    (Some(v), true) => {
                        let initial = base.and_then(|s| read_component(s, comp));
                        compute_int_delta(initial.as_ref(), v)
                    }
                    _ => None,
                };
                match delta {
                    Some(id) => {
                        cd.int_deltas.insert(comp.clone(), id);
                    }
                    // Non-integer, shape-changing, or out-of-i128-range
                    // changes fall back to an overwrite; under a correct
                    // signature only one shard can produce them.
                    None => {
                        cd.overwrites.insert(comp.clone(), final_v);
                    }
                }
            }
            delta.contracts.insert(*addr, cd);
        }
        delta.balances = self.balance.deltas.iter().filter(|(_, d)| **d != 0).map(|(a, d)| (*a, *d)).collect();
        delta.nonces = std::mem::take(&mut self.nonce_committed);

        MicroBlock {
            role: self.cfg.role,
            receipts: self.receipts,
            deferred: self.deferred,
            rerouted: self.rerouted,
            delta,
            gas_used: self.gas_used,
            audit_violations: self.violations,
        }
    }
}

/// The undo log shared by all invocations of one transaction (chained calls
/// roll back together — transitions are atomic, paper §3.1).
#[derive(Default)]
struct TxJournal {
    /// (contract, component, prior value) in write order.
    undo: Vec<(Address, Component, Option<Value>)>,
    /// Components written by this transaction.
    touched: Vec<(Address, Component)>,
}

impl TxJournal {
    fn commit(self, storages: &mut BTreeMap<Address, ShardStorage>) {
        for (addr, comp) in self.touched {
            if let Some(s) = storages.get_mut(&addr) {
                s.touched.insert(comp);
            }
        }
    }

    fn rollback(self, storages: &mut BTreeMap<Address, ShardStorage>) {
        for (addr, comp, prior) in self.undo.into_iter().rev() {
            let Some(s) = storages.get_mut(&addr) else { continue };
            let (field, keys) = &comp;
            match prior {
                Some(v) => {
                    if keys.is_empty() {
                        s.state.store(field, v);
                    } else {
                        s.state.map_update(field, keys, v);
                    }
                }
                None => {
                    if keys.is_empty() {
                        s.state.remove_field(field);
                    } else {
                        s.state.map_delete(field, keys);
                    }
                }
            }
        }
    }
}

/// A [`StateStore`] view that records undo information and touched
/// components into the transaction journal.
struct JournaledStore<'a, 'j> {
    contract: Address,
    inner: &'a mut InMemoryState,
    journal: &'j mut TxJournal,
}

impl JournaledStore<'_, '_> {
    fn record(&mut self, field: &str, keys: &[Value]) {
        let comp: Component = (field.to_string(), keys.to_vec());
        let prior = read_component(self.inner, &comp);
        self.journal.undo.push((self.contract, comp.clone(), prior));
        self.journal.touched.push((self.contract, comp));
    }
}

impl StateStore for JournaledStore<'_, '_> {
    fn load(&self, field: &str) -> Option<Value> {
        self.inner.load(field)
    }

    fn store(&mut self, field: &str, value: Value) {
        self.record(field, &[]);
        self.inner.store(field, value);
    }

    fn map_get(&self, field: &str, keys: &[Value]) -> Option<Value> {
        self.inner.map_get(field, keys)
    }

    fn map_update(&mut self, field: &str, keys: &[Value], value: Value) {
        self.record(field, keys);
        self.inner.map_update(field, keys, value);
    }

    fn map_exists(&self, field: &str, keys: &[Value]) -> bool {
        self.inner.map_exists(field, keys)
    }

    fn map_delete(&mut self, field: &str, keys: &[Value]) {
        self.record(field, keys);
        self.inner.map_delete(field, keys);
    }
}
