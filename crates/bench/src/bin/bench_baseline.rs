//! Perf-regression baseline: measure, record, and gate.
//!
//! `write` measures this host and saves `BENCH_baseline.json` (the file
//! `scripts/bench_baseline.sh` commits); `check` re-measures and fails if
//! any wall metric regressed more than 20% against the saved baseline, if
//! a deterministic dispatch fraction moved more than ±10‰, or if tracing
//! overhead breaches its ceiling. Set `COSPLIT_SKIP_BENCH_GATE=1` to skip
//! the gate (e.g. on a host whose speed bears no relation to the one that
//! wrote the baseline).
//!
//! Usage: `bench_baseline [write|check] [path]` (default: `check
//! BENCH_baseline.json`).

use cosplit_bench::experiments::{check_baseline, measure_baseline, BaselineMeasurement};

const DEFAULT_PATH: &str = "BENCH_baseline.json";
const TOLERANCE: f64 = 0.20;
const REPS: u32 = 5;

fn print_measurement(tag: &str, m: &BaselineMeasurement) {
    println!(
        "  {tag}: serial {:.0} tx/s, epoch {:.2} ms, DS share {}‰, trace overhead {:.2}x, \
         wall speedup {:.2}x @4w ({} core(s))",
        m.serial_tps,
        m.epoch_wall.as_secs_f64() * 1e3,
        m.to_ds_permille,
        m.trace_overhead,
        m.speedup_wall,
        m.host_cores
    );
    let reasons: Vec<String> =
        m.reason_permille.iter().map(|(reason, v)| format!("{reason} {v}‰")).collect();
    println!("  {tag} dispatch fractions: {}", reasons.join(", "));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("check");
    let path = args.get(1).map(String::as_str).unwrap_or(DEFAULT_PATH);

    match mode {
        "write" => {
            // Two spaced measurements, conservative envelope: the committed
            // floor reflects the host's slow moments, not one lucky run.
            let first = measure_baseline(REPS);
            std::thread::sleep(std::time::Duration::from_millis(500));
            let m = first.conservative(&measure_baseline(REPS));
            print_measurement("measured", &m);
            std::fs::write(path, m.to_snapshot().to_json()).unwrap_or_else(|e| {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            });
            println!("bench-baseline: written to {path}");
        }
        "check" => {
            if std::env::var("COSPLIT_SKIP_BENCH_GATE").is_ok_and(|v| v == "1") {
                println!("bench-baseline: skipped (COSPLIT_SKIP_BENCH_GATE=1)");
                return;
            }
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("failed to read {path}: {e} (run `bench_baseline write` first)");
                std::process::exit(1);
            });
            let snap = telemetry::Snapshot::from_json(&text).unwrap_or_else(|e| {
                eprintln!("failed to parse {path}: {e}");
                std::process::exit(1);
            });
            let committed = BaselineMeasurement::from_snapshot(&snap).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            });
            let current = measure_baseline(REPS);
            print_measurement("baseline", &committed);
            print_measurement("current ", &current);
            let failures = check_baseline(&current, &committed, TOLERANCE);
            if !failures.is_empty() {
                for f in &failures {
                    eprintln!("FAIL: {f}");
                }
                eprintln!("bench-baseline: {} regression(s) past the 20% gate", failures.len());
                std::process::exit(1);
            }
            println!("bench-baseline: no regression past the 20% gate");
        }
        other => {
            eprintln!("unknown mode '{other}'; expected: write | check");
            std::process::exit(2);
        }
    }
}
