//! Criterion benches for sharded epoch execution (paper Fig. 14's engine):
//! wall-clock cost of one epoch at different shard counts, plus interpreter
//! throughput on token transfers.

use chain::network::ChainConfig;
use criterion::{criterion_group, criterion_main, env_or, BenchmarkId, Criterion, Throughput};
use workloads::runner::prepare_with;
use workloads::scenarios::{build, Kind};

fn bench_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch/ft-transfer");
    group.sample_size(env_or("BENCH_SAMPLES", 10) as usize);
    let users = env_or("BENCH_USERS", 100);
    let txs = env_or("BENCH_TXS", 2_000) as usize;
    for shards in [1u32, 3, 5] {
        let scenario = build(Kind::FtTransfer, users, txs, 5);
        group.throughput(Throughput::Elements(scenario.load.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &shards| {
            b.iter_batched(
                || {
                    let mut config = ChainConfig::evaluation(shards, true);
                    config.shard_gas_limit = u64::MAX / 4;
                    config.ds_gas_limit = u64::MAX / 4;
                    (prepare_with(&scenario, config), scenario.load.clone())
                },
                |(mut net, mut pool)| {
                    net.run_epoch(&mut pool);
                    net
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    use scilla::gas::GasMeter;
    use scilla::interpreter::TransitionContext;
    use scilla::state::InMemoryState;
    use scilla::value::Value;

    let compiled = scilla::compile_str(scilla::corpus::get("FungibleToken").unwrap().source).unwrap();
    let params = vec![
        ("contract_owner".to_string(), Value::address([9; 20])),
        ("name".to_string(), Value::Str("T".into())),
        ("symbol".to_string(), Value::Str("T".into())),
        ("init_supply".to_string(), Value::Uint(128, 0)),
    ];
    let mut state = InMemoryState::from_fields(compiled.init_fields(&params).unwrap());
    // Seed a balance so transfers succeed.
    let ctx = TransitionContext { sender: [9; 20], ..TransitionContext::zeroed() };
    let mut gas = GasMeter::unlimited();
    compiled
        .execute(
            &mut state,
            "Mint",
            &[("to".into(), Value::address([1; 20])), ("amount".into(), Value::Uint(128, u64::MAX as u128))],
            &params,
            &ctx,
            &mut gas,
        )
        .unwrap();

    c.bench_function("interpreter/ft-transfer", |b| {
        let ctx = TransitionContext { sender: [1; 20], ..TransitionContext::zeroed() };
        b.iter(|| {
            let mut gas = GasMeter::new(100_000);
            compiled
                .execute(
                    &mut state,
                    "Transfer",
                    &[("to".into(), Value::address([2; 20])), ("amount".into(), Value::Uint(128, 1))],
                    &params,
                    &ctx,
                    &mut gas,
                )
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_epoch, bench_interpreter);
criterion_main!(benches);
