//! In-tree replacement for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment is offline, so the workload generators' PRNG is
//! vendored under the upstream package name. `StdRng` here is xoshiro256++
//! seeded via SplitMix64 — deterministic, fast, and statistically solid for
//! workload synthesis (it is not the upstream ChaCha12 generator, so exact
//! streams differ from real `rand`, which no test relies on).

/// A source of randomness (the subset of `rand::Rng` used here).
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly distributed value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`, like upstream.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample(self) < p
    }
}

/// Types with a canonical uniform distribution (upstream's `Standard`).
pub trait Standard: Sized {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: Rng>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}

/// Ranges a uniform sample can be drawn from (upstream's `SampleRange`).
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(uniform_u128(rng, span)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain: every bit pattern is valid.
                    return u128::sample(rng) as $t;
                }
                (lo as u128).wrapping_add(uniform_u128(rng, span)) as $t
            }
        }
    )*};
}

sample_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// An unbiased uniform draw from `[0, span)` by rejection sampling.
fn uniform_u128<R: Rng>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Largest multiple of span that fits in u64; reject above it.
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span) as u128;
            }
        }
    } else {
        let zone = u128::MAX - (u128::MAX % span + 1) % span;
        loop {
            let v = u128::sample(rng);
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// Generators constructible from seeds (the subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expands the seed into the full state, as recommended
            // by the xoshiro authors; an all-zero state is unreachable.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `use rand::prelude::*;` compatibility.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
