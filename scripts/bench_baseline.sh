#!/usr/bin/env bash
# Measures this host's performance baseline and writes BENCH_baseline.json —
# the floor scripts/check.sh gates against (>20% regression fails). Run it
# once per host (or after an intentional perf change) and commit the result.
#
# Usage: scripts/bench_baseline.sh [path]   (default: BENCH_baseline.json)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

PATH_OUT="${1:-BENCH_baseline.json}"
cargo run --release -q -p cosplit-bench --bin bench_baseline -- write "$PATH_OUT"
echo "Baseline written. Commit $PATH_OUT so scripts/check.sh can gate on it."
