//! The type language of the Scilla subset.

use std::fmt;

/// Types (paper Fig. 4: `t ::= int | string | unit | bool | map t t | t → t | …`).
///
/// Integer types carry their signedness and bit width so the interpreter can
/// implement checked wrap-free arithmetic exactly like Scilla's `Uint128` etc.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `IntN` for N ∈ {32, 64, 128, 256}.
    Int(u32),
    /// `UintN` for N ∈ {32, 64, 128, 256}.
    Uint(u32),
    /// `String`.
    Str,
    /// `ByStrN` — fixed-width byte string; `ByStr20` is an address.
    ByStr(u32),
    /// `BNum` — block numbers.
    BNum,
    /// `Message` — the type of message literals.
    Message,
    /// `Map kt vt`.
    Map(Box<Type>, Box<Type>),
    /// `t1 -> t2`.
    Fun(Box<Type>, Box<Type>),
    /// An applied (possibly nullary) ADT: `Bool`, `Option t`, `List t`,
    /// `Pair a b`, or a user-declared type.
    Adt(String, Vec<Type>),
    /// A type variable `'A` inside a `tfun`.
    TypeVar(String),
    /// The type of a `tfun 'A => e` — universally quantified. Produced only
    /// by the type checker; there is no surface syntax for it.
    Forall(String, Box<Type>),
}

impl Type {
    /// Convenience constructor for `Bool`.
    pub fn bool() -> Type {
        Type::Adt("Bool".into(), vec![])
    }

    /// Convenience constructor for `Option t`.
    pub fn option(t: Type) -> Type {
        Type::Adt("Option".into(), vec![t])
    }

    /// Convenience constructor for `List t`.
    pub fn list(t: Type) -> Type {
        Type::Adt("List".into(), vec![t])
    }

    /// Convenience constructor for the canonical address type `ByStr20`.
    pub fn address() -> Type {
        Type::ByStr(20)
    }

    /// Is this one of the integer types (signed or unsigned)?
    pub fn is_integral(&self) -> bool {
        matches!(self, Type::Int(_) | Type::Uint(_))
    }

    /// Is this a ground (monomorphic, fully-applied) storable type — i.e.
    /// something that may appear in a contract field?
    pub fn is_storable(&self) -> bool {
        match self {
            Type::Fun(..) | Type::TypeVar(_) | Type::Message | Type::Forall(..) => false,
            Type::Map(k, v) => k.is_storable() && v.is_storable(),
            Type::Adt(_, args) => args.iter().all(Type::is_storable),
            _ => true,
        }
    }

    /// Substitutes `tvar` by `replacement` throughout.
    pub fn subst(&self, tvar: &str, replacement: &Type) -> Type {
        match self {
            Type::TypeVar(v) if v == tvar => replacement.clone(),
            Type::Map(k, v) => {
                Type::Map(Box::new(k.subst(tvar, replacement)), Box::new(v.subst(tvar, replacement)))
            }
            Type::Fun(a, b) => {
                Type::Fun(Box::new(a.subst(tvar, replacement)), Box::new(b.subst(tvar, replacement)))
            }
            Type::Adt(n, args) => {
                Type::Adt(n.clone(), args.iter().map(|a| a.subst(tvar, replacement)).collect())
            }
            Type::Forall(v, body) if v != tvar => {
                Type::Forall(v.clone(), Box::new(body.subst(tvar, replacement)))
            }
            other => other.clone(),
        }
    }

    /// For a map type, returns the value type reached after indexing with
    /// `depth` keys, along with the key types consumed; `None` if the type
    /// has fewer than `depth` map layers.
    pub fn map_access(&self, depth: usize) -> Option<(Vec<&Type>, &Type)> {
        let mut keys = Vec::with_capacity(depth);
        let mut cur = self;
        for _ in 0..depth {
            match cur {
                Type::Map(k, v) => {
                    keys.push(k.as_ref());
                    cur = v;
                }
                _ => return None,
            }
        }
        Some((keys, cur))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn atomic(t: &Type) -> bool {
            match t {
                Type::Map(..) | Type::Fun(..) => false,
                Type::Adt(_, args) => args.is_empty(),
                _ => true,
            }
        }
        fn write_atom(t: &Type, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if atomic(t) {
                write!(f, "{t}")
            } else {
                write!(f, "({t})")
            }
        }
        match self {
            Type::Int(w) => write!(f, "Int{w}"),
            Type::Uint(w) => write!(f, "Uint{w}"),
            Type::Str => write!(f, "String"),
            Type::ByStr(w) => write!(f, "ByStr{w}"),
            Type::BNum => write!(f, "BNum"),
            Type::Message => write!(f, "Message"),
            Type::Map(k, v) => {
                write!(f, "Map ")?;
                write_atom(k, f)?;
                write!(f, " ")?;
                write_atom(v, f)
            }
            Type::Fun(a, b) => {
                write_atom(a, f)?;
                write!(f, " -> {b}")
            }
            Type::Adt(n, args) => {
                write!(f, "{n}")?;
                for a in args {
                    write!(f, " ")?;
                    write_atom(a, f)?;
                }
                Ok(())
            }
            Type::TypeVar(v) => write!(f, "'{v}"),
            Type::Forall(v, body) => write!(f, "forall '{v}. {body}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parenthesises_nested_maps() {
        let t = Type::Map(
            Box::new(Type::address()),
            Box::new(Type::Map(Box::new(Type::address()), Box::new(Type::Uint(128)))),
        );
        assert_eq!(t.to_string(), "Map ByStr20 (Map ByStr20 Uint128)");
    }

    #[test]
    fn map_access_peels_layers() {
        let t = Type::Map(
            Box::new(Type::address()),
            Box::new(Type::Map(Box::new(Type::Str), Box::new(Type::Uint(32)))),
        );
        let (keys, v) = t.map_access(2).unwrap();
        assert_eq!(keys.len(), 2);
        assert_eq!(*v, Type::Uint(32));
        assert!(t.map_access(3).is_none());
    }

    #[test]
    fn subst_replaces_type_vars() {
        let t = Type::Fun(Box::new(Type::TypeVar("A".into())), Box::new(Type::option(Type::TypeVar("A".into()))));
        let s = t.subst("A", &Type::Uint(128));
        assert_eq!(s.to_string(), "Uint128 -> Option Uint128");
    }

    #[test]
    fn storability_excludes_functions() {
        assert!(Type::Map(Box::new(Type::address()), Box::new(Type::Uint(128))).is_storable());
        assert!(!Type::Fun(Box::new(Type::Str), Box::new(Type::Str)).is_storable());
    }
}
