//! Differential properties: the compiled interpreter must be bit-identical
//! to the definitional AST walker on every observable — result, gas (at any
//! limit, including mid-execution exhaustion), outcome (accept/messages/
//! events), traced footprint, and final state.
//!
//! The corpus is the test vector source: every corpus transition must
//! actually lower (no silent fallback), and randomized typed-argument call
//! sequences over the corpus must agree between backends call-for-call.

use proptest::prelude::*;
use scilla::gas::GasMeter;
use scilla::interpreter::{CompiledContract, ExecMode, TransitionContext, TransitionOutcome};
use scilla::state::InMemoryState;
use scilla::trace::EffectTracer;
use scilla::types::Type;
use scilla::value::Value;

fn addr(b: u8) -> [u8; 20] {
    [b; 20]
}

/// A deterministic, type-directed argument sampler. Returns `None` for types
/// we cannot synthesise (functions, type variables, user ADTs we don't
/// know); callers skip those transitions rather than guess.
fn sample_value(ty: &Type, seed: u64) -> Option<Value> {
    Some(match ty {
        Type::Int(w) => Value::Int(*w, i128::from(seed % 1000) - 500),
        Type::Uint(w) => Value::Uint(*w, u128::from(seed % 1000)),
        Type::Str => Value::Str(format!("s{}", seed % 7)),
        Type::ByStr(n) => Value::ByStr(vec![(seed % 251) as u8; *n as usize]),
        Type::BNum => Value::BNum(seed % 50),
        Type::Map(..) => Value::empty_map(),
        Type::Adt(name, args) => match (name.as_str(), args.as_slice()) {
            ("Bool", []) => Value::bool(seed.is_multiple_of(2)),
            ("Option", [t]) => {
                if seed.is_multiple_of(3) {
                    Value::none()
                } else {
                    Value::some(sample_value(t, seed / 3)?)
                }
            }
            ("List", [t]) => {
                let mut v = Value::Adt { ctor: "Nil".into(), args: vec![] };
                for i in 0..seed % 3 {
                    v = Value::Adt {
                        ctor: "Cons".into(),
                        args: vec![sample_value(t, seed + i)?, v],
                    };
                }
                v
            }
            ("Pair", [a, b]) => Value::Adt {
                ctor: "Pair".into(),
                args: vec![sample_value(a, seed)?, sample_value(b, seed + 1)?],
            },
            _ => return None,
        },
        Type::Message | Type::Fun(..) | Type::TypeVar(_) | Type::Forall(..) => return None,
    })
}

/// Samples every declared contract parameter; `None` if any is unsamplable.
fn sample_params(c: &CompiledContract, seed: u64) -> Option<Vec<(String, Value)>> {
    c.contract()
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| Some((p.name.name.clone(), sample_value(&p.ty, seed + i as u64)?)))
        .collect()
}

fn outcome_eq(a: &TransitionOutcome, b: &TransitionOutcome) -> bool {
    a.accepted == b.accepted
        && a.messages == b.messages
        && a.events == b.events
        && a.gas_used == b.gas_used
}

/// Runs one call through both backends against clones of `state` and checks
/// every observable agrees. On success, commits the post-state and returns it.
#[allow(clippy::too_many_arguments)]
fn differential_call(
    contract: &CompiledContract,
    params: &[(String, Value)],
    state: &InMemoryState,
    transition: &str,
    args: &[(String, Value)],
    ctx: &TransitionContext,
    gas_limit: u64,
) -> InMemoryState {
    let run = |mode: ExecMode| {
        let mut st = state.clone();
        let mut gas = GasMeter::new(gas_limit);
        let mut tracer = EffectTracer::new(transition);
        let r = contract.execute_mode(
            &mut st,
            transition,
            args,
            params,
            ctx,
            &mut gas,
            Some(&mut tracer),
            mode,
        );
        (r, gas.used(), tracer.finish(), st)
    };
    let (ra, gas_a, fp_a, st_a) = run(ExecMode::Ast);
    let (rc, gas_c, fp_c, st_c) = run(ExecMode::Compiled);

    let label = format!("{transition} args={args:?} gas_limit={gas_limit}");
    assert_eq!(gas_a, gas_c, "gas diverged: {label}");
    assert_eq!(fp_a.reads, fp_c.reads, "read footprint diverged: {label}");
    assert_eq!(fp_a.writes, fp_c.writes, "write footprint diverged: {label}");
    assert_eq!(fp_a.conditions, fp_c.conditions, "branch trace diverged: {label}");
    assert_eq!(fp_a.accepts, fp_c.accepts, "accepts diverged: {label}");
    assert_eq!(fp_a.sends, fp_c.sends, "sends diverged: {label}");
    assert_eq!(fp_a.builtin_ops, fp_c.builtin_ops, "builtin trace diverged: {label}");
    assert_eq!(st_a, st_c, "post-state diverged: {label}");
    match (&ra, &rc) {
        (Ok(a), Ok(c)) => assert!(outcome_eq(a, c), "outcome diverged: {label}\n{a:?}\n{c:?}"),
        (Err(a), Err(c)) => {
            assert_eq!(a.to_string(), c.to_string(), "error diverged: {label}")
        }
        _ => panic!("result shape diverged: {label}\nast={ra:?}\ncompiled={rc:?}"),
    }
    // Atomicity discipline as in the real executor: commit only on success.
    if ra.is_ok() {
        st_a
    } else {
        state.clone()
    }
}

/// Every corpus transition must lower to compiled code. `ExecMode::Compiled`
/// errors with a distinctive message when a transition fell back, and that
/// check happens before argument binding — so probing with empty args (and
/// tolerating the resulting invocation errors) covers every transition
/// regardless of parameter types.
#[test]
fn every_corpus_transition_compiles() {
    for entry in scilla::corpus::all() {
        let contract = scilla::compile_str(entry.source)
            .unwrap_or_else(|e| panic!("{} does not compile: {e}", entry.name));
        contract.precompile();
        for t in &contract.contract().transitions {
            let mut st = InMemoryState::new();
            let ctx = TransitionContext {
                sender: addr(1),
                origin: addr(1),
                amount: 0,
                this_address: addr(0xCC),
                block_number: 1,
            };
            let mut gas = GasMeter::new(1_000_000);
            let r = contract.execute_mode(
                &mut st,
                &t.name.name,
                &[],
                &[],
                &ctx,
                &mut gas,
                None,
                ExecMode::Compiled,
            );
            if let Err(e) = r {
                assert!(
                    !e.to_string().contains("fell back"),
                    "{}::{} fell back to the AST walker",
                    entry.name,
                    t.name.name
                );
            }
        }
    }
}

/// Randomized differential sweep: pick a corpus contract, deploy it with
/// sampled parameters, then fire a sequence of transitions with typed
/// sampled arguments through both backends — at gas limits tight enough to
/// die mid-transition and roomy enough to finish — asserting bit-identical
/// behaviour at every step.
fn differential_sequence(contract_idx: usize, calls: &[(usize, u64, u8, u64)], gas_limit: u64) {
    let all = scilla::corpus::all();
    let entry = &all[contract_idx % all.len()];
    let contract = scilla::compile_str(entry.source).expect("corpus compiles");
    let Some(params) = sample_params(&contract, 7) else { return };
    let Ok(fields) = contract.init_fields(&params) else { return };
    let mut state = InMemoryState::from_fields(fields);

    for (t_idx, seed, sender, amount) in calls {
        let transitions = &contract.contract().transitions;
        if transitions.is_empty() {
            return;
        }
        let t = &transitions[t_idx % transitions.len()];
        let args: Option<Vec<(String, Value)>> = t
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| Some((p.name.name.clone(), sample_value(&p.ty, seed + i as u64)?)))
            .collect();
        let Some(args) = args else { continue };
        let ctx = TransitionContext {
            sender: addr(*sender),
            origin: addr(*sender),
            amount: *amount as u128,
            this_address: addr(0xCC),
            block_number: 1 + seed % 20,
        };
        state = differential_call(
            &contract,
            &params,
            &state,
            &t.name.name,
            &args,
            &ctx,
            gas_limit,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_matches_ast_on_corpus_sequences(
        contract_idx in 0usize..64,
        calls in prop::collection::vec(
            (0usize..12, 0u64..10_000, 0u8..6, 0u64..600),
            1..6,
        ),
    ) {
        differential_sequence(contract_idx, &calls, 1_000_000);
    }

    /// Tight gas limits force out-of-gas at arbitrary points; structural gas
    /// parity means both backends die at the identical charge with identical
    /// partial footprints.
    #[test]
    fn compiled_matches_ast_under_gas_exhaustion(
        contract_idx in 0usize..64,
        calls in prop::collection::vec(
            (0usize..12, 0u64..10_000, 0u8..6, 0u64..600),
            1..4,
        ),
        gas_limit in 51u64..400,
    ) {
        differential_sequence(contract_idx, &calls, gas_limit);
    }
}

/// A directed scenario with sends, events, accepts, map ops, and throws —
/// the full outcome surface — checked differentially step by step.
#[test]
fn htlc_differential_scenario() {
    let entry = scilla::corpus::get("HTLC").expect("corpus");
    let contract = scilla::compile_str(entry.source).expect("compiles");
    let params = vec![("init_fee_collector".to_string(), Value::address(addr(9)))];
    let mut state = InMemoryState::from_fields(contract.init_fields(&params).expect("init"));

    let preimage = Value::Str("secret".into());
    let hash = Value::ByStr(scilla::builtins::digest32(&preimage));
    let ctx = |sender: u8, amount: u128| TransitionContext {
        sender: addr(sender),
        origin: addr(sender),
        amount,
        this_address: addr(0xCC),
        block_number: 1,
    };

    state = differential_call(
        &contract,
        &params,
        &state,
        "NewLock",
        &[("hash".into(), hash.clone()), ("deadline".into(), Value::BNum(10))],
        &ctx(1, 500),
        1_000_000,
    );
    // Refund before expiry throws — identically on both backends.
    state = differential_call(
        &contract,
        &params,
        &state,
        "Refund",
        &[("hash".into(), hash.clone())],
        &ctx(1, 0),
        1_000_000,
    );
    state = differential_call(
        &contract,
        &params,
        &state,
        "Withdraw",
        &[("preimage".into(), preimage)],
        &ctx(2, 0),
        1_000_000,
    );
    assert_eq!(
        scilla::state::StateStore::map_get(&state, "lock_amounts", &[hash]),
        None,
        "withdraw cleared the lock"
    );
}

/// Compiled execution really runs compiled code: with telemetry on, the
/// compiled-run counter advances when `ExecMode::Compiled` executes.
#[test]
fn compiled_mode_is_not_vacuous() {
    telemetry::set_enabled(true);
    let entry = scilla::corpus::get("HelloWorld").expect("corpus");
    let contract = scilla::compile_str(entry.source).expect("compiles");
    let params = vec![("hello_owner".to_string(), Value::address(addr(9)))];
    let mut state = InMemoryState::from_fields(contract.init_fields(&params).expect("init"));
    let ctx = TransitionContext {
        sender: addr(9),
        origin: addr(9),
        amount: 0,
        this_address: addr(0xCC),
        block_number: 1,
    };
    let runs_before = telemetry::registry().counter("scilla.compile.runs").get();
    let mut gas = GasMeter::new(1_000_000);
    contract
        .execute_mode(
            &mut state,
            "SetHello",
            &[("msg".to_string(), Value::Str("hei".into()))],
            &params,
            &ctx,
            &mut gas,
            None,
            ExecMode::Compiled,
        )
        .expect("runs compiled");
    let runs_after = telemetry::registry().counter("scilla.compile.runs").get();
    assert!(runs_after > runs_before, "compiled run counter did not advance");
}
