//! Transactions.

use crate::address::Address;
use scilla::value::Value;
use serde_json::json;

/// What a transaction does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxKind {
    /// A user-to-user transfer of native tokens.
    Payment {
        /// Recipient.
        to: Address,
        /// Amount of native tokens.
        amount: u128,
    },
    /// A single-contract transition invocation `⟨C, T, x⟩` (paper §4.3).
    Call {
        /// The contract's address.
        contract: Address,
        /// The transition name.
        transition: String,
        /// Transition arguments by parameter name.
        args: Vec<(String, Value)>,
        /// Native tokens offered (`_amount`).
        amount: u128,
    },
}

/// A signed transaction as submitted to the lookup nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Globally unique id (stands in for the signature hash).
    pub id: u64,
    /// The signer.
    pub sender: Address,
    /// The signer-chosen nonce (paper §4.2.1).
    pub nonce: u64,
    /// Gas budget.
    pub gas_limit: u64,
    /// Price per unit of gas, in native tokens.
    pub gas_price: u128,
    /// The payload.
    pub kind: TxKind,
}

impl Transaction {
    /// A payment transaction with default gas parameters.
    pub fn payment(id: u64, sender: Address, nonce: u64, to: Address, amount: u128) -> Self {
        Transaction {
            id,
            sender,
            nonce,
            gas_limit: 5_000,
            gas_price: 1,
            kind: TxKind::Payment { to, amount },
        }
    }

    /// A contract call with default gas parameters.
    pub fn call(
        id: u64,
        sender: Address,
        nonce: u64,
        contract: Address,
        transition: impl Into<String>,
        args: Vec<(String, Value)>,
    ) -> Self {
        Transaction {
            id,
            sender,
            nonce,
            gas_limit: 10_000,
            gas_price: 1,
            kind: TxKind::Call {
                contract,
                transition: transition.into(),
                args,
                amount: 0,
            },
        }
    }

    /// Attaches native tokens to a call (or overrides a payment amount).
    pub fn with_amount(mut self, amount: u128) -> Self {
        match &mut self.kind {
            TxKind::Payment { amount: a, .. } | TxKind::Call { amount: a, .. } => *a = amount,
        }
        self
    }

    /// Serialises the transaction for repro artifacts ([`crate::sim`]).
    pub fn to_json(&self) -> serde_json::Value {
        let kind = match &self.kind {
            TxKind::Payment { to, amount } => json!({
                "type": "payment",
                "to": to.to_string(),
                "amount": amount.to_string(),
            }),
            TxKind::Call { contract, transition, args, amount } => json!({
                "type": "call",
                "contract": contract.to_string(),
                "transition": transition.clone(),
                "args": args
                    .iter()
                    .map(|(n, v)| json!({"name": n.clone(), "value": scilla::wire::to_json(v)}))
                    .collect::<Vec<_>>(),
                "amount": amount.to_string(),
            }),
        };
        json!({
            "id": self.id,
            "sender": self.sender.to_string(),
            "nonce": self.nonce,
            "gas_limit": self.gas_limit,
            "gas_price": self.gas_price.to_string(),
            "kind": kind,
        })
    }

    /// Parses the JSON form produced by [`Transaction::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed node.
    pub fn from_json(j: &serde_json::Value) -> Result<Transaction, String> {
        let k = &j["kind"];
        let amount: u128 = k["amount"]
            .as_str()
            .ok_or("missing amount")?
            .parse()
            .map_err(|_| "bad amount")?;
        let kind = match k["type"].as_str().ok_or("missing kind type")? {
            "payment" => TxKind::Payment {
                to: Address::from_hex(k["to"].as_str().ok_or("missing to")?)?,
                amount,
            },
            "call" => TxKind::Call {
                contract: Address::from_hex(k["contract"].as_str().ok_or("missing contract")?)?,
                transition: k["transition"].as_str().ok_or("missing transition")?.to_string(),
                args: k["args"]
                    .as_array()
                    .ok_or("missing args")?
                    .iter()
                    .map(|a| {
                        Ok((
                            a["name"].as_str().ok_or("missing arg name")?.to_string(),
                            scilla::wire::from_json(&a["value"])?,
                        ))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                amount,
            },
            other => return Err(format!("unknown tx kind {other}")),
        };
        Ok(Transaction {
            id: j["id"].as_u64().ok_or("missing id")?,
            sender: Address::from_hex(j["sender"].as_str().ok_or("missing sender")?)?,
            nonce: j["nonce"].as_u64().ok_or("missing nonce")?,
            gas_limit: j["gas_limit"].as_u64().ok_or("missing gas_limit")?,
            gas_price: j["gas_price"]
                .as_str()
                .ok_or("missing gas_price")?
                .parse()
                .map_err(|_| "bad gas_price")?,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fill_defaults() {
        let a = Address::from_index(1);
        let b = Address::from_index(2);
        let tx = Transaction::payment(7, a, 1, b, 50);
        assert_eq!(tx.id, 7);
        assert!(tx.gas_limit > 0);
        let call = Transaction::call(8, a, 2, b, "Transfer", vec![]).with_amount(9);
        match call.kind {
            TxKind::Call { amount, transition, .. } => {
                assert_eq!(amount, 9);
                assert_eq!(transition, "Transfer");
            }
            _ => panic!("expected call"),
        }
    }

    #[test]
    fn json_roundtrips() {
        let a = Address::from_index(1);
        let b = Address::from_index(2);
        let pay = Transaction::payment(7, a, 1, b, 50);
        let call = Transaction::call(
            8,
            a,
            2,
            b,
            "Transfer",
            vec![("to".into(), b.to_value()), ("amount".into(), Value::Uint(128, 9))],
        )
        .with_amount(3);
        for tx in [pay, call] {
            assert_eq!(Transaction::from_json(&tx.to_json()).unwrap(), tx);
        }
        assert!(Transaction::from_json(&serde_json::json!({})).is_err());
    }
}
