//! End-to-end telemetry: the `chain.dispatch.reason.*` counters must agree
//! exactly with the [`Decision`]s the dispatcher returns, and running an
//! epoch must populate the executor's status counters and batch-duration
//! histogram.

use chain::address::Address;
use chain::dispatch::{dispatch, Decision};
use chain::network::{ChainConfig, Network};
use chain::tx::Transaction;
use cosplit_analysis::signature::WeakReads;
use scilla::value::Value;
use std::collections::BTreeMap;

const SHARDED: &[&str] = &["Mint", "Transfer"];

fn contract_addr() -> Address {
    Address::from_index(1_000_000)
}

fn owner() -> Address {
    Address::from_index(999)
}

fn setup(num_shards: u32, users: u64) -> Network {
    let mut net = Network::new(ChainConfig::small(num_shards, true));
    net.fund_account(owner(), 1_000_000_000);
    for i in 0..users {
        net.fund_account(Address::from_index(i), 1_000_000_000);
    }
    let params = vec![
        ("contract_owner".to_string(), owner().to_value()),
        ("name".to_string(), Value::Str("Test".into())),
        ("symbol".to_string(), Value::Str("TST".into())),
        ("init_supply".to_string(), Value::Uint(128, 0)),
    ];
    let source = scilla::corpus::get("FungibleToken").unwrap().source;
    net.deploy(contract_addr(), source, params, Some((SHARDED, WeakReads::AcceptAll)))
        .unwrap();
    net
}

fn transfer_tx(id: u64, sender: Address, nonce: u64, to: Address) -> Transaction {
    Transaction::call(
        id,
        sender,
        nonce,
        contract_addr(),
        "Transfer",
        vec![("to".into(), to.to_value()), ("amount".into(), Value::Uint(128, 1))],
    )
}

/// One test function: the registry is process-global, so the scripted
/// dispatch phase and the epoch phase must run sequentially, each measured
/// as a snapshot diff.
#[test]
fn dispatch_counters_match_decisions_and_epoch_populates_executor_metrics() {
    telemetry::set_enabled(true);
    let net = setup(4, 32);

    // --- Scripted dispatch: collect the decisions ourselves and compare
    // with the counter deltas.
    let txs: Vec<Transaction> = (0..32)
        .map(|i| {
            let sender = Address::from_index(i % 8);
            // i % 8 == i % 16 % 8 for targets, so some are self-transfers
            // (alias conflicts), the rest ownership-pinned.
            transfer_tx(i, sender, 1 + i / 8, Address::from_index(i % 16))
        })
        .chain((0..4).map(|i| {
            Transaction::payment(100 + i, Address::from_index(i), 10, Address::from_index(i + 1), 5)
        }))
        .collect();

    let before = telemetry::registry().snapshot();
    let decisions: Vec<Decision> =
        txs.iter().map(|tx| dispatch(tx, net.state(), 4, true)).collect();
    let delta = telemetry::registry().snapshot().diff(&before);

    let mut expected: BTreeMap<String, u64> = BTreeMap::new();
    for d in &decisions {
        *expected.entry(format!("chain.dispatch.reason.{}", d.reason.name())).or_insert(0) += 1;
    }
    assert!(expected.len() >= 2, "workload should exercise several reasons: {expected:?}");
    for (name, count) in &expected {
        assert_eq!(delta.counter(name), *count, "counter {name} disagrees with decisions");
    }
    assert_eq!(
        delta.counter_prefix_sum("chain.dispatch.reason."),
        txs.len() as u64,
        "every dispatch must be attributed to exactly one reason"
    );
    assert_eq!(delta.counter("chain.dispatch.total"), txs.len() as u64);

    // --- A real epoch populates the executor metrics.
    let mut net = net;
    let before = telemetry::registry().snapshot();
    let mut pool = txs;
    let report = net.run_epoch(&mut pool);
    let delta = telemetry::registry().snapshot().diff(&before);

    assert!(report.committed > 0);
    assert_eq!(
        delta.counter("chain.executor.tx_status.success"),
        report.committed as u64,
        "success counter must match the epoch report"
    );
    assert!(
        delta.counter_prefix_sum("chain.executor.tx_status.") > 0,
        "tx_status counters must be populated"
    );
    let batches = delta
        .histograms
        .get("chain.executor.batch_duration")
        .expect("batch duration histogram registered");
    // 4 shard committees + the DS committee ran once each.
    assert_eq!(batches.count, 5);
    assert!(batches.sum > 0, "batch durations must be non-zero");
    assert_eq!(delta.counter("chain.network.epochs"), 1);
    assert!(delta.counter_prefix_sum("scilla.interpreter.transitions") > 0);

    // The epoch's dispatch phase also went through the counters.
    assert_eq!(delta.counter_prefix_sum("chain.dispatch.reason."), pool_dispatched(&report));
}

fn pool_dispatched(report: &chain::network::EpochReport) -> u64 {
    report.dispatch_reasons.values().map(|v| *v as u64).sum()
}
