//! Process-wide symbol interning.
//!
//! Identifier text — field names, transition names, constructor tags,
//! message keys — is drawn from a small static vocabulary (the contract
//! sources), yet the hot path used to compare and clone `String`s for every
//! load, store, and constructor application. A [`Sym`] is a `Copy` handle
//! into a process-wide append-only table: equality and hashing are integer
//! ops, `as_str` is a lock-free-read away, and nothing is ever freed (the
//! vocabulary is bounded by the deployed code, not the workload).
//!
//! # Ordering caveat
//!
//! `Sym`'s derived `Ord` compares table indices, which depend on interning
//! order and are therefore *not* stable across processes (or even across
//! runs with different thread timings). Fast in-process containers
//! (`BTreeMap<Sym, _>`) are fine; anything **canonical** — wire encodings,
//! digests, golden test output — must order by [`Sym::as_str`] (see
//! [`Sym::cmp_str`]). The delta wire format and value printers in this
//! workspace do exactly that.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string: a `Copy` integer handle with O(1) equality/hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Interner {
    /// Resolved text by id. Strings are leaked, so resolving hands out
    /// `&'static str` without holding the lock.
    strs: RwLock<Vec<&'static str>>,
    /// Reverse map used by [`intern`].
    ids: RwLock<HashMap<&'static str, Sym>>,
}

/// Symbols interned at table construction, in fixed order, so their ids are
/// compile-time constants. `well_known_ids_match` pins the correspondence.
const WELL_KNOWN: &[&str] = &[
    "",
    "True",
    "False",
    "Some",
    "None",
    "Cons",
    "Nil",
    "Pair",
    "_sender",
    "_origin",
    "_amount",
    "_this_address",
    "_recipient",
    "_tag",
    "_eventname",
    "_exception",
];

impl Sym {
    /// The empty string.
    pub const EMPTY: Sym = Sym(0);
    /// `True`.
    pub const TRUE: Sym = Sym(1);
    /// `False`.
    pub const FALSE: Sym = Sym(2);
    /// `Some`.
    pub const SOME: Sym = Sym(3);
    /// `None`.
    pub const NONE: Sym = Sym(4);
    /// `Cons`.
    pub const CONS: Sym = Sym(5);
    /// `Nil`.
    pub const NIL: Sym = Sym(6);
    /// `Pair`.
    pub const PAIR: Sym = Sym(7);
    /// `_sender`.
    pub const SENDER: Sym = Sym(8);
    /// `_origin`.
    pub const ORIGIN: Sym = Sym(9);
    /// `_amount`.
    pub const AMOUNT: Sym = Sym(10);
    /// `_this_address`.
    pub const THIS_ADDRESS: Sym = Sym(11);
    /// `_recipient`.
    pub const RECIPIENT: Sym = Sym(12);
    /// `_tag`.
    pub const TAG: Sym = Sym(13);
    /// `_eventname`.
    pub const EVENTNAME: Sym = Sym(14);
    /// `_exception`.
    pub const EXCEPTION: Sym = Sym(15);

    /// The interned text. The return borrows the process-wide table (leaked
    /// storage), not any lock guard.
    pub fn as_str(self) -> &'static str {
        table().strs.read().unwrap()[self.0 as usize]
    }

    /// The raw table index (diagnostics only — see the ordering caveat).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Canonical (string) ordering, with an integer fast path on equality.
    /// Use this wherever ordering must be stable across processes.
    pub fn cmp_str(self, other: Sym) -> std::cmp::Ordering {
        if self == other {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

fn table() -> &'static Interner {
    static TABLE: OnceLock<Interner> = OnceLock::new();
    TABLE.get_or_init(|| {
        let t = Interner { strs: RwLock::new(Vec::new()), ids: RwLock::new(HashMap::new()) };
        {
            let mut strs = t.strs.write().unwrap();
            let mut ids = t.ids.write().unwrap();
            for (i, s) in WELL_KNOWN.iter().enumerate() {
                strs.push(s);
                ids.insert(*s, Sym(i as u32));
            }
        }
        t
    })
}

/// Interns `s`, returning its stable in-process handle. Idempotent; never
/// allocates when `s` is already in the table.
pub fn intern(s: &str) -> Sym {
    let t = table();
    if let Some(sym) = t.ids.read().unwrap().get(s) {
        return *sym;
    }
    let mut ids = t.ids.write().unwrap();
    // Somebody may have interned `s` between our read and write lock.
    if let Some(sym) = ids.get(s) {
        return *sym;
    }
    let mut strs = t.strs.write().unwrap();
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let sym = Sym(strs.len() as u32);
    strs.push(leaked);
    ids.insert(leaked, sym);
    sym
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        intern(&s)
    }
}

impl Default for Sym {
    fn default() -> Sym {
        Sym::EMPTY
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("balances");
        let b = intern("balances");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "balances");
    }

    #[test]
    fn distinct_strings_get_distinct_syms() {
        assert_ne!(intern("alpha_x"), intern("alpha_y"));
    }

    #[test]
    fn well_known_ids_match() {
        for (i, s) in WELL_KNOWN.iter().enumerate() {
            assert_eq!(intern(s).id(), i as u32, "well-known symbol {s:?} drifted");
        }
        assert_eq!(Sym::TRUE, "True");
        assert_eq!(Sym::FALSE, "False");
        assert_eq!(Sym::SOME, "Some");
        assert_eq!(Sym::NONE, "None");
        assert_eq!(Sym::CONS, "Cons");
        assert_eq!(Sym::NIL, "Nil");
        assert_eq!(Sym::PAIR, "Pair");
        assert_eq!(Sym::SENDER, "_sender");
        assert_eq!(Sym::ORIGIN, "_origin");
        assert_eq!(Sym::AMOUNT, "_amount");
        assert_eq!(Sym::THIS_ADDRESS, "_this_address");
        assert_eq!(Sym::RECIPIENT, "_recipient");
        assert_eq!(Sym::TAG, "_tag");
        assert_eq!(Sym::EVENTNAME, "_eventname");
        assert_eq!(Sym::EXCEPTION, "_exception");
    }

    #[test]
    fn cmp_str_orders_by_text_not_id() {
        // Intern in reverse-lexicographic order so ids disagree with text.
        let z = intern("zzz_order_probe");
        let a = intern("aaa_order_probe");
        assert!(z.id() < a.id());
        assert_eq!(a.cmp_str(z), std::cmp::Ordering::Less);
        assert_eq!(z.cmp_str(a), std::cmp::Ordering::Greater);
        assert_eq!(a.cmp_str(a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn string_equality_shortcuts() {
        assert!(intern("Pair") == "Pair");
        assert!("Pair" == intern("Pair"));
        assert!(intern("Pair") != "Cons");
    }
}
