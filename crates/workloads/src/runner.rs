//! Runs a scenario on a configured network and reports throughput — the
//! measurement loop behind Fig. 14.

use crate::scenarios::{admin, contract_addr, Scenario};
use chain::address::Address;
use chain::network::{throughput, ChainConfig, EpochReport, Network};

/// The result of one measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload label.
    pub label: &'static str,
    /// Shards used.
    pub num_shards: u32,
    /// Whether CoSplit dispatch was active.
    pub cosplit: bool,
    /// Per-epoch reports for the measured phase.
    pub reports: Vec<EpochReport>,
}

impl RunResult {
    /// Average transactions per (simulated) second.
    pub fn tps(&self) -> f64 {
        throughput(&self.reports)
    }

    /// Total committed transactions.
    pub fn committed(&self) -> usize {
        self.reports.iter().map(|r| r.committed).sum()
    }
}

/// Prepares a network for a scenario: fund accounts, deploy the contract
/// (with its signature when `use_cosplit`), and commit the setup phase.
pub fn prepare(scenario: &Scenario, num_shards: u32, use_cosplit: bool) -> Network {
    prepare_with(scenario, ChainConfig::evaluation(num_shards, use_cosplit))
}

/// [`prepare`] with an explicit configuration.
pub fn prepare_with(scenario: &Scenario, config: ChainConfig) -> Network {
    let use_cosplit = config.use_cosplit;
    let mut net = Network::new(config);
    net.fund_account(admin(), u128::MAX / 4);
    for i in 0..scenario.users {
        net.fund_account(Address::from_index(i), 1_000_000_000_000);
    }
    // Secondary contracts first: the primary's params may reference their
    // addresses (RelayPing's `sink`), and composition resolves such params
    // against the deployed-contract table.
    for extra in &scenario.extra {
        let source = scilla::corpus::get(extra.corpus_name).expect("extra corpus contract").source;
        let sharding = use_cosplit
            .then(|| (extra.sharded_transitions.as_slice(), scenario.weak_reads.clone()));
        net.deploy(extra.addr, source, extra.params.clone(), sharding)
            .expect("extra contract deploys");
    }
    let source = scilla::corpus::get(scenario.corpus_name).expect("corpus contract").source;
    let sharding = use_cosplit
        .then(|| (scenario.sharded_transitions.as_slice(), scenario.weak_reads.clone()));
    net.deploy(
        contract_addr(),
        source,
        scenario.params.clone(),
        sharding,
    )
    .expect("scenario contract deploys");

    let mut setup_pool = scenario.setup.clone();
    let mut guard = 0;
    while !setup_pool.is_empty() {
        net.run_epoch(&mut setup_pool);
        guard += 1;
        assert!(guard < 1_000, "setup did not converge");
    }
    net
}

/// Adapts a scenario's setup phase to the shape the differential oracle in
/// `chain::sim` expects: a builder that prepares a fresh world from any
/// configuration, so the sharded and 1-shard reference chains start from
/// identical genesis states.
pub fn world_builder(scenario: &Scenario) -> impl Fn(&ChainConfig) -> Network + '_ {
    move |config| prepare_with(scenario, config.clone())
}

/// Writes the global telemetry snapshot as JSON — the `BENCH_metrics.json`
/// artefact the bench harness leaves next to its text output.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn dump_metrics(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, telemetry::registry().snapshot().to_json())
}

/// Runs the measured phase: the scenario's load sustained over `epochs`
/// epochs (paper: "workloads sustained over 10 epochs").
pub fn run(scenario: &Scenario, num_shards: u32, use_cosplit: bool, epochs: usize) -> RunResult {
    run_with(scenario, ChainConfig::evaluation(num_shards, use_cosplit), epochs)
}

/// [`run`] with an explicit configuration (tests use the scaled-down
/// [`ChainConfig::small`]).
pub fn run_with(scenario: &Scenario, config: ChainConfig, epochs: usize) -> RunResult {
    let num_shards = config.num_shards;
    let cosplit = config.use_cosplit;
    let mut net = prepare_with(scenario, config);
    let mut pool = scenario.load.clone();
    let reports = net.run_epochs(&mut pool, epochs);
    RunResult { label: scenario.kind.label(), num_shards, cosplit, reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{build, Kind};

    #[test]
    fn ft_transfer_scales_with_shards() {
        // Over-supply load so the gas budget is the binding constraint.
        let scenario = build(Kind::FtTransfer, 60, 4_000, 11);
        let base = run_with(&scenario, ChainConfig::small(3, false), 2);
        let co3 = run_with(&scenario, ChainConfig::small(3, true), 2);
        let co5 = run_with(&scenario, ChainConfig::small(5, true), 2);
        assert!(
            co3.tps() > base.tps() * 1.5,
            "CoSplit should beat baseline: {} vs {}",
            co3.tps(),
            base.tps()
        );
        assert!(
            co5.tps() > co3.tps() * 1.2,
            "5 shards should beat 3: {} vs {}",
            co5.tps(),
            co3.tps()
        );
    }

    #[test]
    fn nft_mint_scales_despite_single_source() {
        // §5.2.1: ownership follows the token id, so even one minter's
        // transactions spread — "only possible because of the changes to
        // the account-based model" (§4.2).
        let scenario = build(Kind::NftMint, 60, 4_000, 13);
        let co3 = run_with(&scenario, ChainConfig::small(3, true), 2);
        let co5 = run_with(&scenario, ChainConfig::small(5, true), 2);
        let base = run_with(&scenario, ChainConfig::small(3, false), 2);
        assert!(co3.tps() > base.tps() * 2.0, "{} vs {}", co3.tps(), base.tps());
        assert!(co5.tps() > co3.tps() * 1.2, "{} vs {}", co5.tps(), co3.tps());
    }

    #[test]
    fn ud_bestow_scales_for_the_admin() {
        let scenario = build(Kind::UdBestow, 60, 4_000, 14);
        let co3 = run_with(&scenario, ChainConfig::small(3, true), 2);
        let co5 = run_with(&scenario, ChainConfig::small(5, true), 2);
        assert!(co5.tps() > co3.tps() * 1.2, "{} vs {}", co5.tps(), co3.tps());
    }

    #[test]
    fn ft_fund_does_not_scale() {
        let scenario = build(Kind::FtFund, 60, 4_000, 12);
        let co3 = run_with(&scenario, ChainConfig::small(3, true), 2);
        let co5 = run_with(&scenario, ChainConfig::small(5, true), 2);
        // Single-source: all transfers pin to one shard; extra shards do not
        // help (allow generous noise).
        assert!(
            co5.tps() < co3.tps() * 1.3,
            "single-source workload must not scale: {} vs {}",
            co5.tps(),
            co3.tps()
        );
    }
}
