//! Round-trips of the JSON wire forms exchanged with the blockchain nodes:
//! sharding signatures (deployment artefact) and audit violations (the
//! sanitizer's replayable repro records).

use cosplit_analysis::audit::{AuditViolation, ViolationKind};
use cosplit_analysis::domain::PseudoField;
use cosplit_analysis::signature::{
    Constraint, Join, ShardingSignature, TransitionConstraints, WeakReads,
};
use cosplit_analysis::solver::AnalyzedContract;
use scilla::span::Span;
use std::collections::BTreeSet;

fn analyzed(src: &str) -> AnalyzedContract {
    let checked =
        scilla::typechecker::typecheck(scilla::parser::parse_module(src).unwrap()).unwrap();
    AnalyzedContract::analyze(&checked)
}

const TOKEN: &str = r#"
    library L
    contract Token ()
    field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
    field total : Uint128 = Uint128 0
    transition Transfer (to : ByStr20, amount : Uint128)
      b <- balances[_sender];
      match b with
      | Some v =>
        nb = builtin sub v amount;
        balances[_sender] := nb;
        t <- balances[to];
        nt = match t with
          | Some u => builtin add u amount
          | None => amount
          end;
        balances[to] := nt
      | None =>
      end
    end
    transition CheckTotal ()
      t <- total;
      total := t
    end
"#;

fn roundtrip(sig: &ShardingSignature) -> ShardingSignature {
    let json = sig.to_json();
    ShardingSignature::from_json(&json)
        .unwrap_or_else(|e| panic!("round-trip failed: {e}\n{json}"))
}

#[test]
fn derived_signature_roundtrips_with_accept_all() {
    let sig = analyzed(TOKEN)
        .query(&["Transfer".into(), "CheckTotal".into()], &WeakReads::AcceptAll);
    assert_eq!(roundtrip(&sig), sig);
}

#[test]
fn derived_signature_roundtrips_with_declined_weak_reads() {
    // Declining every weak read exercises the revocation path: the resulting
    // signature must still round-trip (different joins, empty weak_reads).
    let a = analyzed(TOKEN);
    let names = vec!["Transfer".to_string(), "CheckTotal".to_string()];
    let declined = a.query(&names, &WeakReads::Fields(BTreeSet::new()));
    assert_eq!(roundtrip(&declined), declined);

    let accepted = a.query(&names, &WeakReads::AcceptAll);
    assert_eq!(roundtrip(&accepted), accepted);

    // The two variants must stay distinguishable on the wire.
    if accepted != declined {
        assert_ne!(accepted.to_json(), declined.to_json());
    }
}

#[test]
fn derived_signature_roundtrips_with_selective_weak_reads() {
    let fields: BTreeSet<String> = ["balances".to_string(), "total".to_string()].into();
    let sig = analyzed(TOKEN).query(
        &["Transfer".into(), "CheckTotal".into()],
        &WeakReads::Fields(fields),
    );
    assert_eq!(roundtrip(&sig), sig);
}

#[test]
fn hand_built_signature_with_every_constraint_roundtrips() {
    let sig = ShardingSignature {
        transitions: vec![
            TransitionConstraints {
                name: "A".into(),
                params: vec!["x".into(), "y".into()],
                constraints: [
                    Constraint::Owns(PseudoField::whole("f")),
                    Constraint::Owns(PseudoField::entry("m", vec!["x".into(), "y".into()])),
                    Constraint::UserAddr("x".into()),
                    Constraint::NoAliases(vec!["x".into()], vec!["y".into()]),
                    Constraint::SenderShard,
                    Constraint::ContractShard,
                ]
                .into_iter()
                .collect(),
            },
            TransitionConstraints {
                name: "B".into(),
                params: vec![],
                constraints: [Constraint::Unsat].into_iter().collect(),
            },
        ],
        joins: [("f".to_string(), Join::OwnOverwrite), ("m".to_string(), Join::IntMerge)]
            .into_iter()
            .collect(),
        weak_reads: ["f".to_string()].into_iter().collect(),
    };
    assert_eq!(roundtrip(&sig), sig);
}

#[test]
fn violation_roundtrips_for_every_kind() {
    for (i, kind) in ViolationKind::all().into_iter().enumerate() {
        let v = AuditViolation {
            kind,
            transition: format!("T{i}"),
            pseudofield: Some(PseudoField::entry("balances", vec!["who".into()])),
            concrete: "balances[0x0101]".into(),
            abstract_op: Some("{add, sub}".into()),
            observed_op: Some("set".into()),
            span: Span { start: 10 + i, end: 20 + i, line: 3, col: 7 },
        };
        let back = AuditViolation::from_json(&v.to_json())
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(back, v, "{kind}");
    }
}

#[test]
fn violation_roundtrips_with_absent_optionals() {
    let v = AuditViolation {
        kind: ViolationKind::UnsummarisedAccept,
        transition: "Deposit".into(),
        pseudofield: None,
        concrete: "accept".into(),
        abstract_op: None,
        observed_op: None,
        span: Span::dummy(),
    };
    let json = v.to_json();
    assert_eq!(AuditViolation::from_json(&json).unwrap(), v);

    // Whole-field pseudo-field (empty key list) survives too.
    let v = AuditViolation {
        pseudofield: Some(PseudoField::whole("pot")),
        ..v
    };
    assert_eq!(AuditViolation::from_json(&v.to_json()).unwrap(), v);
}

#[test]
fn violation_parse_rejects_malformed_input() {
    assert!(AuditViolation::from_json("not json").is_err());
    assert!(AuditViolation::from_json("{}").is_err());
    assert!(AuditViolation::from_json(
        r#"{"kind":"NoSuchKind","transition":"T","concrete":"x",
            "span":{"start":0,"end":0,"line":0,"col":0}}"#
    )
    .is_err());
    // A missing span is an error, not a panic.
    assert!(AuditViolation::from_json(r#"{"kind":"UnsummarisedRead","transition":"T","concrete":"x"}"#).is_err());
}

#[test]
fn kind_names_are_stable_and_distinct() {
    let names: BTreeSet<&str> = ViolationKind::all().iter().map(|k| k.as_str()).collect();
    assert_eq!(names.len(), ViolationKind::all().len());
    // Display matches the wire name (repro artefacts grep on it).
    for k in ViolationKind::all() {
        assert_eq!(k.to_string(), k.as_str());
    }
}
