//! Focused executor tests: balance slices (§4.2.2), journal rollback
//! atomicity, gas budgeting/deferral, and the §6 overflow guard.

use chain::address::Address;
use chain::dispatch::Assignment;
use chain::executor::{execute_batch, ExecutorConfig, RerouteCause, TxStatus};
use chain::network::{ChainConfig, Network};
use chain::state::GlobalState;
use chain::tx::Transaction;
use cosplit_analysis::signature::WeakReads;
use scilla::state::StateStore;
use scilla::value::Value;

fn cfg(role: Assignment, num_shards: u32) -> ExecutorConfig {
    ExecutorConfig {
        role,
        num_shards,
        gas_limit: 1_000_000,
        block_number: 5,
        use_cosplit: true,
        overflow_guard: false,
        allow_contract_msgs: matches!(role, Assignment::Ds),
        audit: true,
        parallel_workers: 0,
        compose_calls: false,
    }
}

#[test]
fn payment_in_away_shard_is_limited_to_the_slice() {
    let mut state = GlobalState::new();
    let alice = Address::from_index(1);
    let bob = Address::from_index(2);
    state.credit(alice, 1_000_000);

    let num_shards = 4;
    let away = (0..num_shards).find(|s| *s != alice.home_shard(num_shards)).unwrap();

    // The away-slice is base/(4n) = 62_500; a larger payment must fail there…
    let tx = Transaction::payment(1, alice, 1, bob, 100_000);
    let mb = execute_batch(&cfg(Assignment::Shard(away), num_shards), &state, vec![tx.clone()]);
    assert!(matches!(&mb.receipts[0].status, TxStatus::Failed(m) if m.contains("slice")));

    // …but succeed in the home shard, which holds the large fraction.
    let home = alice.home_shard(num_shards);
    let mb = execute_batch(&cfg(Assignment::Shard(home), num_shards), &state, vec![tx]);
    assert_eq!(mb.receipts[0].status, TxStatus::Success);
    assert_eq!(mb.delta.balances[&bob], 100_000);
}

#[test]
fn slices_of_one_account_never_oversubscribe_the_balance() {
    let mut state = GlobalState::new();
    let alice = Address::from_index(1);
    state.credit(alice, 1_000_000);
    let num_shards = 5;

    // Spend the *whole slice* in every shard concurrently; the summed
    // debits must not exceed the balance.
    let mut total_spent: i128 = 0;
    for s in 0..num_shards {
        let mut spent_here = 0u128;
        // Binary-search-free approach: try payments of decreasing size.
        for amount in [900_000u128, 500_000, 100_000, 50_000, 10_000, 1_000] {
            let tx = Transaction::payment(
                u64::from(s) * 100 + amount as u64 % 97,
                alice,
                u64::from(s) + 1,
                Address::from_index(99),
                amount,
            );
            let mb = execute_batch(&cfg(Assignment::Shard(s), num_shards), &state, vec![tx]);
            if mb.receipts[0].status == TxStatus::Success {
                spent_here += amount;
                total_spent += mb.delta.balances.get(&alice).copied().unwrap_or(0).abs();
                break;
            }
        }
        let _ = spent_here;
    }
    assert!(
        total_spent <= 1_000_000,
        "parallel slices overspent the balance: {total_spent}"
    );
}

#[test]
fn failed_transaction_rolls_back_but_still_pays_gas() {
    // Build a network to get a deployed contract + storage conveniently.
    let mut net = Network::new(ChainConfig::evaluation(1, true));
    let user = Address::from_index(1);
    net.fund_account(user, 1_000_000);
    let contract = Address::from_index(50);
    let src = r#"
        contract C ()
        field n : Uint128 = Uint128 7
        transition SetThenThrow (v : Uint128)
          n := v;
          throw
        end
    "#;
    net.deploy(contract, src, vec![], Some((&["SetThenThrow"], WeakReads::AcceptAll))).unwrap();

    let balance_before = net.state().balance(&user);
    let mut pool = vec![Transaction::call(
        1,
        user,
        1,
        contract,
        "SetThenThrow",
        vec![("v".into(), Value::Uint(128, 999))],
    )];
    let report = net.run_epoch(&mut pool);
    assert_eq!(report.failed, 1);
    // The write rolled back…
    assert_eq!(net.storage_of(&contract).unwrap().load("n"), Some(Value::Uint(128, 7)));
    // …but gas was charged.
    assert!(net.state().balance(&user) < balance_before);
}

#[test]
fn gas_budget_defers_the_tail_of_the_batch() {
    let mut state = GlobalState::new();
    let alice = Address::from_index(1);
    state.credit(alice, u128::MAX / 2);
    let home = alice.home_shard(1);

    let mut config = cfg(Assignment::Shard(home), 1);
    // Admission checks actual usage so far plus the next tx's gas_limit
    // (5_000): 50·k + 5_000 > 5_200 first holds at k = 5.
    config.gas_limit = 5_200;
    let txs: Vec<Transaction> = (0..10)
        .map(|i| Transaction::payment(i, alice, i + 1, Address::from_index(2), 1))
        .collect();
    let mb = execute_batch(&config, &state, txs);
    assert_eq!(mb.receipts.len(), 5, "{:?}", mb.receipts);
    assert_eq!(mb.deferred.len(), 5);
}

#[test]
fn lookup_packets_hold_back_overflowing_transactions() {
    let mut net = Network::new(ChainConfig {
        max_packet_txs: 3,
        ..ChainConfig::evaluation(1, true)
    });
    let alice = Address::from_index(1);
    net.fund_account(alice, 1_000_000);
    let mut pool: Vec<Transaction> = (0..10)
        .map(|i| Transaction::payment(i + 1, alice, i + 1, Address::from_index(2), 1))
        .collect();
    let r1 = net.run_epoch(&mut pool);
    assert_eq!(r1.committed, 3, "{r1:?}");
    assert_eq!(pool.len(), 7, "overflow stays in the pool");
    let r2 = net.run_epoch(&mut pool);
    assert_eq!(r2.committed, 3);
    // Everything eventually drains.
    let mut total = r1.committed + r2.committed;
    while !pool.is_empty() {
        total += net.run_epoch(&mut pool).committed;
    }
    assert_eq!(total, 10);
}

#[test]
fn strict_nonce_policy_serialises_away_from_home() {
    use chain::dispatch::{dispatch_policy, DispatchPolicy};
    // An unconstrained (fully commutative) call normally spreads; with
    // strict nonces it may only run at the sender's home shard.
    let mut net = Network::new(ChainConfig::evaluation(4, true));
    let alice = Address::from_index(1);
    net.fund_account(alice, 1_000_000);
    let contract = Address::from_index(80);
    let src = r#"
        contract Counter ()
        field total : Uint128 = Uint128 0
        transition Add (v : Uint128)
          t <- total;
          t2 = builtin add t v;
          total := t2
        end
    "#;
    net.deploy(contract, src, vec![], Some((&["Add"], WeakReads::AcceptAll))).unwrap();
    let strict = DispatchPolicy {
        num_shards: 4,
        use_cosplit: true,
        relaxed_nonces: false,
        cross_shard_commit: false,
        compose_calls: false,
    };
    for i in 0..32 {
        let tx = Transaction::call(i, alice, i + 1, contract, "Add", vec![(
            "v".into(),
            Value::Uint(128, 1),
        )]);
        let d = dispatch_policy(&tx, net.state(), &strict);
        match d.assignment {
            Assignment::Shard(s) => assert_eq!(s, alice.home_shard(4)),
            Assignment::Ds => {}
            Assignment::XShard => panic!("strict nonces demote xshard to DS"),
        }
    }
}

#[test]
fn overflow_guard_reroutes_risky_adds() {
    let mut net = Network::new(ChainConfig::evaluation(4, true));
    let user = Address::from_index(1);
    net.fund_account(user, 1_000_000_000);
    let contract = Address::from_index(60);
    let src = r#"
        contract Counter ()
        field total : Uint128 = Uint128 0
        transition Add (v : Uint128)
          t <- total;
          t2 = builtin add t v;
          total := t2
        end
    "#;
    net.deploy(contract, src, vec![], Some((&["Add"], WeakReads::AcceptAll))).unwrap();

    // Fill the counter close to the top.
    let near_max = u128::MAX - 1_000;
    let mut pool = vec![Transaction::call(
        1,
        user,
        1,
        contract,
        "Add",
        vec![("v".into(), Value::Uint(128, near_max))],
    )];
    net.run_epoch(&mut pool);

    // Now reconfigure with the guard on and fire adds that individually fit
    // but collectively overflow: with N=4 shards the per-shard allowance is
    // ⌊1000/4⌋ = 250 < 400, so every one reroutes to the DS committee,
    // where the interpreter's checked arithmetic decides sequentially.
    let mut guarded = Network::new(ChainConfig { overflow_guard: true, ..ChainConfig::evaluation(4, true) });
    guarded.fund_account(user, 1_000_000_000);
    guarded.deploy(contract, src, vec![], Some((&["Add"], WeakReads::AcceptAll))).unwrap();
    let mut pool = vec![Transaction::call(
        1,
        user,
        1,
        contract,
        "Add",
        vec![("v".into(), Value::Uint(128, near_max))],
    )];
    guarded.run_epoch(&mut pool);

    let mut pool: Vec<Transaction> = (0..8)
        .map(|i| {
            Transaction::call(10 + i, user, 2 + i, contract, "Add", vec![(
                "v".into(),
                Value::Uint(128, 400),
            )])
        })
        .collect();
    let report = guarded.run_epoch(&mut pool);
    // Exactly ⌊1000/400⌋ = 2 adds can succeed before the counter tops out;
    // the rest fail sequentially at the DS with checked arithmetic, and the
    // final value never exceeds MAX (the merge would otherwise panic).
    assert_eq!(report.committed, 2, "{report:?}");
    let total = guarded.storage_of(&contract).unwrap().load("total").unwrap();
    assert_eq!(total, Value::Uint(128, near_max + 800));
}

#[test]
fn huge_uint_values_fall_back_to_overwrites_and_merge_fine() {
    // A fresh write of nearly u128::MAX has no i128-representable delta;
    // the executor must fall back to an overwrite rather than corrupt it.
    let mut net = Network::new(ChainConfig::evaluation(3, true));
    let user = Address::from_index(1);
    net.fund_account(user, 1_000_000_000);
    let contract = Address::from_index(61);
    let src = r#"
        contract Big ()
        field total : Uint128 = Uint128 0
        transition Add (v : Uint128)
          t <- total;
          t2 = builtin add t v;
          total := t2
        end
    "#;
    net.deploy(contract, src, vec![], Some((&["Add"], WeakReads::AcceptAll))).unwrap();
    let huge = u128::MAX - 5;
    let mut pool = vec![Transaction::call(
        1,
        user,
        1,
        contract,
        "Add",
        vec![("v".into(), Value::Uint(128, huge))],
    )];
    let report = net.run_epoch(&mut pool);
    assert_eq!(report.committed, 1, "{report:?}");
    assert_eq!(
        net.storage_of(&contract).unwrap().load("total"),
        Some(Value::Uint(128, huge))
    );
}

#[test]
fn cross_contract_message_reroutes_with_cause() {
    let mut net = Network::new(ChainConfig::evaluation(2, true));
    let user = Address::from_index(1);
    net.fund_account(user, 1_000_000_000);
    let target = Address::from_index(70);
    let proxy = Address::from_index(71);
    let ping_src = r#"
        contract Target ()
        field pings : Uint128 = Uint128 0
        transition Ping (note : String)
          one = Uint128 1;
          p <- pings;
          p2 = builtin add p one;
          pings := p2
        end
    "#;
    let proxy_src = r#"
        library L
        let nil_msg = Nil {Message}
        let one_msg = fun (m : Message) => Cons {Message} m nil_msg
        let zero = Uint128 0
        contract Proxy (target : ByStr20)
        transition Relay (note : String)
          m = {_tag : "Ping"; _recipient : target; _amount : zero; note : note};
          msgs = one_msg m;
          send msgs
        end
    "#;
    net.deploy(target, ping_src, vec![], None).unwrap();
    net.deploy(
        proxy,
        proxy_src,
        vec![("target".to_string(), target.to_value())],
        // Sharding Relay: its recipient is the `target` contract parameter;
        // dispatch's UserAddr check sees a contract address and routes to
        // the DS — but we exercise the runtime fallback by executing in a
        // shard directly.
        None,
    )
    .unwrap();

    // Execute directly in a shard: the message chain must cause a reroute.
    let tx = Transaction::call(1, user, 1, proxy, "Relay", vec![(
        "note".into(),
        Value::Str("hi".into()),
    )]);
    let cfg = ExecutorConfig {
        role: Assignment::Shard(0),
        num_shards: 2,
        gas_limit: 1_000_000,
        block_number: 1,
        use_cosplit: true,
        overflow_guard: false,
        allow_contract_msgs: false,
        audit: true,
        parallel_workers: 0,
        compose_calls: false,
    };
    let mb = execute_batch(&cfg, net.state(), vec![tx]);
    assert_eq!(mb.receipts[0].status, TxStatus::Rerouted(RerouteCause::CrossContract));
    assert_eq!(mb.rerouted.len(), 1);
    assert!(mb.delta.is_empty(), "reroute must leave no trace: {:?}", mb.delta);
}

#[test]
fn events_surface_in_epoch_receipts() {
    let mut net = Network::new(ChainConfig::evaluation(2, true));
    let user = Address::from_index(1);
    net.fund_account(user, 1_000_000);
    let contract = Address::from_index(90);
    let src = r#"
        contract C ()
        field last : String = ""
        transition Shout (text : String)
          last := text;
          e = {_eventname : "Shouted"; text : text};
          event e
        end
    "#;
    net.deploy(contract, src, vec![], Some((&["Shout"], WeakReads::AcceptAll))).unwrap();
    let mut pool = vec![Transaction::call(1, user, 1, contract, "Shout", vec![(
        "text".into(),
        Value::Str("hello".into()),
    )])];
    let report = net.run_epoch(&mut pool);
    let receipt = report.receipts.iter().find(|r| r.tx_id == 1).expect("receipt");
    assert_eq!(receipt.status, TxStatus::Success);
    assert_eq!(receipt.events.len(), 1);
    match &receipt.events[0] {
        Value::Msg(m) => assert_eq!(m.get(&scilla::intern::Sym::EVENTNAME), Some(&Value::Str("Shouted".into()))),
        other => panic!("expected event message, got {other}"),
    }
}
