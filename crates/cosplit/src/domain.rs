//! The CoSplit abstract domain (paper Fig. 6).
//!
//! Contribution types over-approximate, for every computed value, *which*
//! parts of the initial contract state / transition parameters / constants
//! flow into it, *how many times* (cardinality 0/1/ω), and *through which
//! operations*. The cardinality algebra is the one in Fig. 6:
//!
//! ```text
//! 0 ⊕ α = α      0 ⊔ α = α      0 ⊗ α = 0
//! 1 ⊕ 1 = ω      1 ⊔ 1 = 1      1 ⊗ 1 = 1
//! α ⊕ ω = ω      α ⊔ ω = ω      α ⊗ ω = ω
//! ```
//!
//! Precision is tracked *per contribution source*: a source is `Exact` as
//! long as no control-flow join merged differing operation sets for it. This
//! is what lets the paper's §3.5 query — "is the transition's effect on `f`
//! an addition of a constant to `f`'s old value, its only **exact**
//! contribution being `Field f ↦ (1, Builtin add)`" — succeed for the
//! `Transfer` example even though the option-peeling `match` makes the
//! *parameter* contribution inexact.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How many times a contribution source flows into a value: 0, 1, or ω
/// ("many"). Inspired by GHC's cardinality analysis (paper footnote 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cardinality {
    /// The source does not flow into the value (but may condition it).
    Zero,
    /// Linear: flows in exactly once.
    One,
    /// Non-linear: may flow in more than once.
    Many,
}

#[allow(clippy::should_implement_trait)] // ⊕/⊗ are the paper's partial operators, not std ops
impl Cardinality {
    /// `⊕` — sequential combination (both contributions happen).
    pub fn add(self, other: Cardinality) -> Cardinality {
        use Cardinality::*;
        match (self, other) {
            (Zero, a) | (a, Zero) => a,
            _ => Many,
        }
    }

    /// `⊔` — join of alternatives (either contribution happens).
    pub fn join(self, other: Cardinality) -> Cardinality {
        use Cardinality::*;
        match (self, other) {
            (Zero, a) | (a, Zero) => a,
            (One, One) => One,
            _ => Many,
        }
    }

    /// `⊗` — multiplication (a contribution used through another).
    pub fn mul(self, other: Cardinality) -> Cardinality {
        use Cardinality::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => Many,
        }
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cardinality::Zero => write!(f, "0"),
            Cardinality::One => write!(f, "1"),
            Cardinality::Many => write!(f, "ω"),
        }
    }
}

/// An operation applied to a contribution source on its way into a value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// A builtin application (`add`, `sub`, `concat`, …).
    Builtin(String),
    /// Control-flow dependence introduced by a `match`.
    Cond,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Builtin(b) => write!(f, "{b}"),
            Op::Cond => write!(f, "Cond"),
        }
    }
}

/// A set of operations (ordered `ops1 ⊑ ops2 iff ops1 ⊂ ops2`).
pub type Ops = BTreeSet<Op>;

/// Whether the analysis lost precision for a source by joining control flows
/// (`Exact ⊑ Inexact`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Precision {
    /// No over-approximation of operation sets has occurred.
    Exact,
    /// Joining control flows merged differing operation sets.
    Inexact,
}

impl Precision {
    /// `⊔` on the two-point precision lattice.
    pub fn join(self, other: Precision) -> Precision {
        if self == Precision::Inexact || other == Precision::Inexact {
            Precision::Inexact
        } else {
            Precision::Exact
        }
    }
}

/// One source's contribution: cardinality, operations, and precision.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Contribution {
    /// How many times the source flows in.
    pub card: Cardinality,
    /// Which operations it passes through.
    pub ops: Ops,
    /// Whether `ops` is exact for this source.
    pub precision: Precision,
}

impl Contribution {
    /// A fresh linear contribution with no operations.
    pub fn linear() -> Self {
        Contribution { card: Cardinality::One, ops: Ops::new(), precision: Precision::Exact }
    }

    fn add(&self, other: &Contribution) -> Contribution {
        Contribution {
            card: self.card.add(other.card),
            ops: self.ops.union(&other.ops).cloned().collect(),
            precision: self.precision.join(other.precision),
        }
    }

    fn join(&self, other: &Contribution) -> Contribution {
        // Precision degrades exactly when both alternatives genuinely flow
        // (card ≠ 0) with differing operation sets.
        let degraded = self.card != Cardinality::Zero
            && other.card != Cardinality::Zero
            && self.ops != other.ops;
        Contribution {
            card: self.card.join(other.card),
            ops: self.ops.union(&other.ops).cloned().collect(),
            precision: if degraded {
                Precision::Inexact
            } else {
                self.precision.join(other.precision)
            },
        }
    }
}

/// A symbolic state component: a contract field, optionally indexed by map
/// keys that are transition parameters (paper §3.3, `CanSummarise`).
///
/// `balances[_sender]` becomes `PseudoField { field: "balances", keys:
/// ["_sender"] }`; the keys are *names* that dispatch instantiates with the
/// actual transaction arguments at runtime (paper §4.3).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PseudoField {
    /// Field name.
    pub field: String,
    /// Parameter names used as map keys, outermost first. Empty for a
    /// whole-field access.
    pub keys: Vec<String>,
}

impl PseudoField {
    /// A whole-field pseudo-field.
    pub fn whole(field: impl Into<String>) -> Self {
        PseudoField { field: field.into(), keys: Vec::new() }
    }

    /// A map-entry pseudo-field.
    pub fn entry(field: impl Into<String>, keys: Vec<String>) -> Self {
        PseudoField { field: field.into(), keys }
    }

    /// Does this pseudo-field denote the entire field (no keys)?
    pub fn is_whole_field(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Pure single-argument builtins a pseudo-field key may be derived through.
///
/// A key need not *be* a transition parameter to be dispatch-instantiable: a
/// deterministic pure function of one is just as good, because the
/// dispatcher can replay the derivation on the transaction's concrete
/// arguments (`slot = builtin sha256hash account; wiped[slot] := b` names
/// exactly the entry `wiped[sha256hash(account)]`). Such keys are written
/// `"<builtin>(<inner>)"`, nesting allowed, with a transition parameter (or
/// `_sender`/`_origin`) at the base.
pub const DERIVABLE_KEY_BUILTINS: &[&str] = &["sha256hash", "keccak256hash"];

/// Splits a derived pseudo-field key into its outermost builtin and the
/// inner key: `"sha256hash(account)"` → `("sha256hash", "account")`.
/// Returns `None` for plain parameter keys.
pub fn parse_derived_key(key: &str) -> Option<(&str, &str)> {
    let open = key.find('(')?;
    let builtin = &key[..open];
    if !DERIVABLE_KEY_BUILTINS.contains(&builtin) || !key.ends_with(')') {
        return None;
    }
    Some((builtin, &key[open + 1..key.len() - 1]))
}

/// The transition parameter at the base of a (possibly derived) key.
pub fn key_base_param(key: &str) -> &str {
    match parse_derived_key(key) {
        Some((_, inner)) => key_base_param(inner),
        None => key,
    }
}

/// Resolves a pseudo-field key to its concrete value: looks up the base
/// parameter through `base`, then replays the derivation chain with the
/// same builtin evaluator the interpreter uses — so the resolved key is
/// bit-identical to the key the transition actually touches.
pub fn resolve_key(
    key: &str,
    base: &dyn Fn(&str) -> Option<scilla::value::Value>,
) -> Option<scilla::value::Value> {
    match parse_derived_key(key) {
        Some((builtin, inner)) => {
            let v = resolve_key(inner, base)?;
            scilla::builtins::eval_builtin(builtin, &[v]).ok()
        }
        None => base(key),
    }
}

impl fmt::Display for PseudoField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.field)?;
        for k in &self.keys {
            write!(f, "[{k}]")?;
        }
        Ok(())
    }
}

/// Where a contribution ultimately comes from (paper Fig. 6, `cs`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ContribSource {
    /// The value of a state component at the start of the transition.
    Field(PseudoField),
    /// A literal constant (rendered), or an environment constant such as the
    /// block number. Also covers values of fields proven constant.
    Const(String),
    /// A transition or contract parameter (including `_sender`, `_amount`).
    Param(String),
}

impl fmt::Display for ContribSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContribSource::Field(pf) => write!(f, "{pf}"),
            ContribSource::Const(c) => write!(f, "const {c}"),
            ContribSource::Param(p) => write!(f, "{p}"),
        }
    }
}

/// A contribution type `τ` (paper Fig. 6): a finite map from sources to
/// [`Contribution`]s — or `⊤`, about which nothing is known.
///
/// `⊥` is the empty map. Function types are not represented here: the
/// analysis propagates abstract closures instead (see `analysis`), which
/// covers the paper's `EFun` arrow types including second-order use.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ContribType {
    /// A known set of contributions.
    Known(BTreeMap<ContribSource, Contribution>),
    /// No information (`⊤`).
    Top,
}

impl ContribType {
    /// `⊥` — the empty contribution.
    pub fn bottom() -> Self {
        ContribType::Known(BTreeMap::new())
    }

    /// A single linear source with no operations.
    pub fn source(cs: ContribSource) -> Self {
        let mut sources = BTreeMap::new();
        sources.insert(cs, Contribution::linear());
        ContribType::Known(sources)
    }

    /// Is this `⊤`?
    pub fn is_top(&self) -> bool {
        matches!(self, ContribType::Top)
    }

    /// The sources map, if known.
    pub fn sources(&self) -> Option<&BTreeMap<ContribSource, Contribution>> {
        match self {
            ContribType::Known(sources) => Some(sources),
            ContribType::Top => None,
        }
    }

    /// The overall precision: the join over all sources (`None` for `⊤`).
    pub fn precision(&self) -> Option<Precision> {
        self.sources().map(|s| {
            s.values().fold(Precision::Exact, |acc, c| acc.join(c.precision))
        })
    }

    /// `⊕` — combine contributions that both flow into a value
    /// (cardinalities added pointwise, operations unioned).
    pub fn add(&self, other: &ContribType) -> ContribType {
        let (ContribType::Known(a), ContribType::Known(b)) = (self, other) else {
            return ContribType::Top;
        };
        let mut out = a.clone();
        for (cs, contrib) in b {
            match out.entry(cs.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(contrib.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    *e.get_mut() = e.get().add(contrib);
                }
            }
        }
        ContribType::Known(out)
    }

    /// `⊔` — join of control-flow alternatives. A source's precision
    /// degrades when the alternatives apply differing operation sets to it.
    pub fn join(&self, other: &ContribType) -> ContribType {
        let (ContribType::Known(a), ContribType::Known(b)) = (self, other) else {
            return ContribType::Top;
        };
        let mut out = a.clone();
        for (cs, contrib) in b {
            match out.entry(cs.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(contrib.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    *e.get_mut() = e.get().join(contrib);
                }
            }
        }
        ContribType::Known(out)
    }

    /// Returns a copy with `op` recorded on every source (the `Builtin`
    /// rule in Fig. 7: `τ = τ′ with ops += blt`).
    pub fn with_op(&self, op: Op) -> ContribType {
        match self {
            ContribType::Top => ContribType::Top,
            ContribType::Known(sources) => ContribType::Known(
                sources
                    .iter()
                    .map(|(cs, c)| {
                        let mut c = c.clone();
                        c.ops.insert(op.clone());
                        (cs.clone(), c)
                    })
                    .collect(),
            ),
        }
    }

    /// `AdaptC` (paper §3.4): the conditioning contribution of a match
    /// scrutinee — every source demoted to cardinality 0 with the `Cond`
    /// operation; `Exact` iff the clause types agreed on their variables.
    pub fn adapt_cond(&self, same_vars: bool) -> ContribType {
        match self {
            ContribType::Top => ContribType::Top,
            ContribType::Known(sources) => ContribType::Known(
                sources.keys().map(|cs| {
                        let mut ops = Ops::new();
                        ops.insert(Op::Cond);
                        (
                            cs.clone(),
                            Contribution {
                                card: Cardinality::Zero,
                                ops,
                                precision: if same_vars { Precision::Exact } else { Precision::Inexact },
                            },
                        )
                    })
                    .collect(),
            ),
        }
    }

    /// All `Field` sources mentioned (with any cardinality, including 0).
    pub fn fields(&self) -> Vec<&PseudoField> {
        match self {
            ContribType::Top => Vec::new(),
            ContribType::Known(sources) => sources.keys().filter_map(|cs| match cs {
                    ContribSource::Field(pf) => Some(pf),
                    _ => None,
                })
                .collect(),
        }
    }

    /// Does the type mention `pf` as a source?
    pub fn mentions_field(&self, pf: &PseudoField) -> bool {
        match self {
            // ⊤ may depend on anything.
            ContribType::Top => true,
            ContribType::Known(sources) => sources.contains_key(&ContribSource::Field(pf.clone())),
        }
    }
}

impl fmt::Display for ContribType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContribType::Top => write!(f, "⊤"),
            ContribType::Known(sources) => {
                write!(f, "⟨")?;
                for (i, (cs, c)) in sources.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{cs} ↦ ({}, {{", c.card)?;
                    for (j, op) in c.ops.iter().enumerate() {
                        if j > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{op}")?;
                    }
                    let p = if c.precision == Precision::Exact { "" } else { "~" };
                    write!(f, "}}{p})")?;
                }
                write!(f, "⟩")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Cardinality::*;

    #[test]
    fn cardinality_tables_match_fig6() {
        // ⊕
        assert_eq!(Zero.add(One), One);
        assert_eq!(One.add(Zero), One);
        assert_eq!(One.add(One), Many);
        assert_eq!(Many.add(Zero), Many);
        assert_eq!(One.add(Many), Many);
        // ⊔
        assert_eq!(Zero.join(One), One);
        assert_eq!(One.join(One), One);
        assert_eq!(One.join(Many), Many);
        // ⊗
        assert_eq!(Zero.mul(Many), Zero);
        assert_eq!(One.mul(One), One);
        assert_eq!(One.mul(Many), Many);
    }

    fn field(name: &str) -> ContribSource {
        ContribSource::Field(PseudoField::whole(name))
    }

    fn ops(names: &[&str]) -> Ops {
        names.iter().map(|n| Op::Builtin(n.to_string())).collect()
    }

    #[test]
    fn add_sums_cardinalities_and_unions_ops() {
        let a = ContribType::source(field("f")).with_op(Op::Builtin("add".into()));
        let b = ContribType::source(field("f")).with_op(Op::Builtin("sub".into()));
        let sum = a.add(&b);
        let c = &sum.sources().unwrap()[&field("f")];
        assert_eq!(c.card, Many);
        assert_eq!(c.ops, ops(&["add", "sub"]));
        assert_eq!(c.precision, Precision::Exact);
    }

    #[test]
    fn join_keeps_exact_when_ops_agree() {
        let a = ContribType::source(field("f")).with_op(Op::Builtin("add".into()));
        let b = ContribType::source(field("f")).with_op(Op::Builtin("add".into()));
        let j = a.join(&b);
        let c = &j.sources().unwrap()[&field("f")];
        assert_eq!(c.precision, Precision::Exact);
        assert_eq!(c.card, One);
    }

    #[test]
    fn join_degrades_precision_on_differing_ops() {
        let a = ContribType::source(field("f")).with_op(Op::Builtin("add".into()));
        let b = ContribType::source(field("f")).with_op(Op::Builtin("mul".into()));
        let j = a.join(&b);
        assert_eq!(j.sources().unwrap()[&field("f")].precision, Precision::Inexact);
        assert_eq!(j.precision(), Some(Precision::Inexact));
    }

    #[test]
    fn join_with_absent_source_stays_exact_per_source() {
        // The option-peel pattern: `Some b => add b amount | None => amount`.
        let amount = ContribSource::Param("amount".into());
        let some_branch = ContribType::source(field("bal"))
            .add(&ContribType::source(amount.clone()))
            .with_op(Op::Builtin("add".into()));
        let none_branch = ContribType::source(amount.clone());
        let j = some_branch.join(&none_branch);
        // The field's contribution stays exact (its ops agree wherever it
        // flows), even though the parameter's becomes inexact.
        let f = &j.sources().unwrap()[&field("bal")];
        assert_eq!((f.card, f.precision), (One, Precision::Exact));
        assert_eq!(f.ops, ops(&["add"]));
        assert_eq!(j.sources().unwrap()[&amount].precision, Precision::Inexact);
    }

    #[test]
    fn top_is_absorbing() {
        let a = ContribType::source(field("f"));
        assert!(a.add(&ContribType::Top).is_top());
        assert!(ContribType::Top.join(&a).is_top());
        assert!(ContribType::Top.with_op(Op::Cond).is_top());
    }

    #[test]
    fn adapt_cond_zeroes_cardinalities() {
        let a = ContribType::source(field("f"));
        let c = a.adapt_cond(true);
        let contrib = &c.sources().unwrap()[&field("f")];
        assert_eq!(contrib.card, Zero);
        assert!(contrib.ops.contains(&Op::Cond));
        assert_eq!(contrib.precision, Precision::Exact);
        assert_eq!(a.adapt_cond(false).precision(), Some(Precision::Inexact));
    }

    #[test]
    fn display_round_trips_shape() {
        let pf = PseudoField::entry("balances", vec!["_sender".into()]);
        assert_eq!(pf.to_string(), "balances[_sender]");
        assert!(!pf.is_whole_field());
        assert!(PseudoField::whole("x").is_whole_field());
    }
}
