//! Edge cases of the §3.4 match rules — `MatchC`, `AdaptC`, `IsKnownOp`,
//! `SameVars` — observed through the summaries `summarize_contract` produces
//! and the joins the derived signature picks.

use cosplit_analysis::analysis::summarize_contract;
use cosplit_analysis::domain::{
    Cardinality, ContribSource, ContribType, Op, Precision, PseudoField,
};
use cosplit_analysis::effects::{Effect, TransitionSummary};
use cosplit_analysis::signature::{derive_signature, is_commutative_write, Join, WeakReads};

fn summaries(src: &str) -> Vec<TransitionSummary> {
    let checked =
        scilla::typechecker::typecheck(scilla::parser::parse_module(src).unwrap()).unwrap();
    summarize_contract(&checked)
}

fn legacy_summaries(src: &str) -> Vec<TransitionSummary> {
    let checked =
        scilla::typechecker::typecheck(scilla::parser::parse_module(src).unwrap()).unwrap();
    cosplit_analysis::analysis::summarize_contract_legacy(&checked)
}

fn write_type<'a>(s: &'a TransitionSummary, pf: &PseudoField) -> &'a ContribType {
    s.writes()
        .find(|(w, _)| *w == pf)
        .map(|(_, t)| t)
        .unwrap_or_else(|| panic!("no write to {pf} in {s}"))
}

fn source<'a>(
    t: &'a ContribType,
    cs: &ContribSource,
) -> &'a cosplit_analysis::domain::Contribution {
    t.sources()
        .and_then(|s| s.get(cs))
        .unwrap_or_else(|| panic!("{t} lacks source {cs:?}"))
}

#[test]
fn known_op_option_peel_keeps_commutativity() {
    // `IsKnownOp`: a match whose patterns only peel `Some`/`None` does not
    // condition the result on the scrutinee — the classic
    // load-add-store-with-default stays a commutative write.
    let src = r#"
        library L
        contract C ()
        field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
        transition Deposit (amount : Uint128)
          b <- balances[_sender];
          nb = match b with
            | Some v => builtin add v amount
            | None => amount
            end;
          balances[_sender] := nb
        end
    "#;
    let ss = summaries(src);
    let s = &ss[0];
    assert!(!s.has_top(), "{s}");
    let pf = PseudoField::entry("balances", vec!["_sender".into()]);
    let t = write_type(s, &pf);
    let self_c = source(t, &ContribSource::Field(pf.clone()));
    assert_eq!(self_c.card, Cardinality::One);
    assert_eq!(self_c.precision, Precision::Exact);
    assert!(!self_c.ops.contains(&Op::Cond), "{t}");
    assert!(is_commutative_write(&pf, t), "{t}");

    let sig = derive_signature(&ss, &["Deposit".into()], &WeakReads::AcceptAll);
    assert_eq!(sig.joins.get("balances"), Some(&Join::IntMerge), "{sig:?}");
}

#[test]
fn known_op_accepts_wildcard_clauses() {
    // A wildcard default clause is irrefutable, so `IsKnownOp` still fires.
    let src = r#"
        library L
        contract C ()
        field pot : Uint128 = Uint128 0
        transition Bump (amount : Uint128, o : Option Uint128)
          p <- pot;
          d = match o with
            | Some v => v
            | _ => amount
            end;
          np = builtin add p d;
          pot := np
        end
    "#;
    let ss = summaries(src);
    let s = &ss[0];
    assert!(!s.has_top(), "{s}");
    let pf = PseudoField::whole("pot");
    assert!(is_commutative_write(&pf, write_type(s, &pf)), "{s}");
}

#[test]
fn structural_match_conditions_the_written_value() {
    // `MatchC` over a non-Option scrutinee: the written value is conditioned
    // on the scrutinee. `AdaptC` demotes the scrutinee's sources to
    // cardinality 0 with the `Cond` op, and the joined clause types widen the
    // self-op set to {add, sub} with Inexact precision — so the write is no
    // longer commutative and the field's join falls back to ownership.
    let src = r#"
        library L
        contract C ()
        field mode : Bool = True
        field pot : Uint128 = Uint128 0
        transition Toggle (amount : Uint128)
          m <- mode;
          p <- pot;
          np = match m with
            | True => builtin add p amount
            | False => builtin sub p amount
            end;
          pot := np
        end
    "#;
    let ss = summaries(src);
    let s = ss.iter().find(|s| s.name == "Toggle").unwrap();
    assert!(!s.has_top(), "{s}");
    let pot = PseudoField::whole("pot");
    let t = write_type(s, &pot);

    // Both clauses draw on the same sources, so `SameVars` holds and the
    // conditioning stays Exact — but it is present, with cardinality 0.
    let mode_c = source(t, &ContribSource::Field(PseudoField::whole("mode")));
    assert_eq!(mode_c.card, Cardinality::Zero, "{t}");
    assert!(mode_c.ops.contains(&Op::Cond), "{t}");
    assert_eq!(mode_c.precision, Precision::Exact, "{t}");

    // The self-contribution joined differing op sets: widened and Inexact.
    let self_c = source(t, &ContribSource::Field(pot.clone()));
    assert_eq!(self_c.card, Cardinality::One);
    assert_eq!(self_c.precision, Precision::Inexact, "{t}");
    assert!(self_c.ops.contains(&Op::Builtin("add".into())), "{t}");
    assert!(self_c.ops.contains(&Op::Builtin("sub".into())), "{t}");
    assert!(!is_commutative_write(&pot, t), "{t}");

    let sig = derive_signature(&ss, &["Toggle".into()], &WeakReads::AcceptAll);
    assert_eq!(sig.joins.get("pot"), Some(&Join::OwnOverwrite), "{sig:?}");
}

#[test]
fn clauses_on_different_sources_lose_precision() {
    // `SameVars` fails when the clauses draw on different sources: the
    // conditioning contribution itself becomes Inexact.
    let src = r#"
        library L
        contract C ()
        field mode : Bool = True
        field out : Uint128 = Uint128 0
        transition Pick (a : Uint128, b : Uint128)
          m <- mode;
          v = match m with
            | True => a
            | False => b
            end;
          out := v
        end
    "#;
    let ss = summaries(src);
    let s = ss.iter().find(|s| s.name == "Pick").unwrap();
    let t = write_type(s, &PseudoField::whole("out"));
    let mode_c = source(t, &ContribSource::Field(PseudoField::whole("mode")));
    assert_eq!(mode_c.card, Cardinality::Zero);
    assert!(mode_c.ops.contains(&Op::Cond));
    assert_eq!(mode_c.precision, Precision::Inexact, "{t}");
    // Both alternatives flow in, each only from one branch.
    assert!(t.sources().unwrap().contains_key(&ContribSource::Param("a".into())));
    assert!(t.sources().unwrap().contains_key(&ContribSource::Param("b".into())));
}

#[test]
fn nested_map_keys_become_multi_key_pseudofields() {
    let src = r#"
        library L
        contract C ()
        field allowances : Map ByStr20 (Map ByStr20 Uint128) =
          Emp ByStr20 (Map ByStr20 Uint128)
        transition Approve (spender : ByStr20, amount : Uint128)
          allowances[_sender][spender] := amount
        end
        transition Revoke (spender : ByStr20)
          delete allowances[_sender][spender]
        end
    "#;
    let ss = summaries(src);
    let approve = ss.iter().find(|s| s.name == "Approve").unwrap();
    assert!(!approve.has_top(), "{approve}");
    let pf = PseudoField::entry("allowances", vec!["_sender".into(), "spender".into()]);
    assert!(approve.has_write(&pf), "{approve}");

    let revoke = ss.iter().find(|s| s.name == "Revoke").unwrap();
    assert!(!revoke.has_top(), "{revoke}");
    assert!(revoke.has_write(&pf), "{revoke}");
}

#[test]
fn partial_depth_map_access_is_top() {
    // A one-key access of a two-level map reaches a Map value, which the
    // pseudo-field domain cannot name: the imprecision localizes to the
    // field (and collapses the whole summary only in legacy mode).
    let src = r#"
        library L
        contract C ()
        field allowances : Map ByStr20 (Map ByStr20 Uint128) =
          Emp ByStr20 (Map ByStr20 Uint128)
        transition Probe (a : ByStr20)
          row <- allowances[a]
        end
    "#;
    let ss = summaries(src);
    assert!(!ss[0].has_top(), "{}", ss[0]);
    assert!(ss[0].has_top_field_on("allowances"), "{}", ss[0]);
    let legacy = legacy_summaries(src);
    assert!(legacy[0].has_top(), "{}", legacy[0]);
}

#[test]
fn computed_map_key_is_top() {
    // A key with no dispatch-replayable derivation (a multi-argument
    // builtin) cannot name a pseudo-field: ⊤, localized to the touched
    // field in refined mode. A binder that merely renames a parameter, by
    // contrast, resolves through the abstract environment and stays precise
    // — dispatch instantiates the pseudo-field from the parameter itself.
    let src = r#"
        library L
        contract C ()
        field balances : Map String Uint128 = Emp String Uint128
        transition Touch (who : String, amount : Uint128)
          k = builtin concat who who;
          balances[k] := amount
        end
    "#;
    let ss = summaries(src);
    assert!(!ss[0].has_top(), "{}", ss[0]);
    assert!(ss[0].has_top_field_on("balances"), "{}", ss[0]);
    let legacy = legacy_summaries(src);
    assert!(legacy[0].has_top(), "{}", legacy[0]);

    let alias_src = r#"
        library L
        contract C ()
        field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
        transition Touch (who : ByStr20, amount : Uint128)
          k = who;
          balances[k] := amount
        end
    "#;
    let ss = summaries(alias_src);
    assert!(ss[0].top_fields().count() == 0, "{}", ss[0]);
    assert!(
        ss[0].has_write(&PseudoField::entry("balances", vec!["who".into()])),
        "{}",
        ss[0]
    );
    // The paper's parameter-only rule still applies in legacy mode.
    let legacy = legacy_summaries(alias_src);
    assert!(legacy[0].has_top(), "{}", legacy[0]);
}

#[test]
fn statement_level_match_on_field_emits_condition() {
    // A statement-level match over a loaded field pushes `Condition(τ)` so
    // the derivation can see the control dependency on state.
    let src = r#"
        library L
        contract C ()
        field locked : Bool = False
        field pot : Uint128 = Uint128 0
        transition Maybe (amount : Uint128)
          l <- locked;
          match l with
          | False =>
            p <- pot;
            np = builtin add p amount;
            pot := np
          | True =>
          end
        end
    "#;
    let ss = summaries(src);
    let s = ss.iter().find(|s| s.name == "Maybe").unwrap();
    assert!(!s.has_top(), "{s}");
    assert!(
        s.effects.iter().any(|e| matches!(e, Effect::Condition(t)
            if t.mentions_field(&PseudoField::whole("locked")))),
        "{s}"
    );
    // The guarded write inside the clause is still summarised.
    assert!(s.has_write(&PseudoField::whole("pot")), "{s}");
}
