//! Contract state storage abstraction.
//!
//! The interpreter manipulates contract fields through the [`StateStore`]
//! trait so that the blockchain layer can interpose overlays (per-shard
//! scratch states, write logs for state-delta computation) without the
//! interpreter knowing.
//!
//! Storage values are structurally shared: every [`Value::Map`] node is
//! `Arc`-backed, so cloning a store (or any value read out of it) is a
//! pointer bump. Mutation goes through [`map_make_mut`], which copies a map
//! node only when it is shared — and counts each such copy-on-write break in
//! telemetry, so benchmarks can assert that snapshot/fork cost is O(writes),
//! not O(state).
//!
//! [`CowState`] builds on this: a component-level overlay of pending writes
//! over an `Arc`-shared [`InMemoryState`] base. Taking a snapshot of an
//! untouched store, or forking a working store, never copies field values.

use crate::intern::{intern, Sym};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;
use telemetry::names;

/// Mutable access to a contract's fields.
///
/// Nested map entries are addressed by a field name plus a key path; a key
/// path shorter than the map's nesting depth addresses a whole sub-map.
///
/// Every operation exists in two forms: a `&str` form for callers holding
/// text, and a `*_sym` form taking a pre-interned [`Sym`]. The interpreter
/// and compiled transitions use the `Sym` forms exclusively — field names
/// resolve once at parse/compile time, so the per-statement path does no
/// string hashing or allocation. The defaults make the two forms
/// interchangeable; stores override whichever side is native to them.
pub trait StateStore {
    /// Reads a whole field. `None` if the field does not exist.
    fn load(&self, field: &str) -> Option<Value>;

    /// Overwrites a whole field.
    fn store(&mut self, field: &str, value: Value);

    /// Reads one (possibly nested) map entry.
    fn map_get(&self, field: &str, keys: &[Value]) -> Option<Value>;

    /// Writes one (possibly nested) map entry, materialising intermediate
    /// maps as needed.
    fn map_update(&mut self, field: &str, keys: &[Value], value: Value);

    /// Tests whether a map entry exists.
    ///
    /// The default goes through [`StateStore::map_get`]; stores should
    /// override it with a clone-free walk (a partial key path would otherwise
    /// clone a whole sub-map just to discard it).
    fn map_exists(&self, field: &str, keys: &[Value]) -> bool {
        self.map_get(field, keys).is_some()
    }

    /// Deletes one (possibly nested) map entry. No-op if absent.
    fn map_delete(&mut self, field: &str, keys: &[Value]);

    /// [`StateStore::load`] with a pre-interned field name.
    fn load_sym(&self, field: Sym) -> Option<Value> {
        self.load(field.as_str())
    }

    /// [`StateStore::store`] with a pre-interned field name.
    fn store_sym(&mut self, field: Sym, value: Value) {
        self.store(field.as_str(), value);
    }

    /// [`StateStore::map_get`] with a pre-interned field name.
    fn map_get_sym(&self, field: Sym, keys: &[Value]) -> Option<Value> {
        self.map_get(field.as_str(), keys)
    }

    /// [`StateStore::map_update`] with a pre-interned field name.
    fn map_update_sym(&mut self, field: Sym, keys: &[Value], value: Value) {
        self.map_update(field.as_str(), keys, value);
    }

    /// [`StateStore::map_exists`] with a pre-interned field name.
    fn map_exists_sym(&self, field: Sym, keys: &[Value]) -> bool {
        self.map_exists(field.as_str(), keys)
    }

    /// [`StateStore::map_delete`] with a pre-interned field name.
    fn map_delete_sym(&mut self, field: Sym, keys: &[Value]) {
        self.map_delete(field.as_str(), keys);
    }
}

/// Grants mutable access to a shared map node, copying it first if anyone
/// else holds a reference (`Arc::make_mut`). Each such copy — a CoW break —
/// is counted in telemetry (`chain.state.cow_breaks` / `bytes_cloned`) so
/// experiments can measure how much state the write path actually copies.
pub fn map_make_mut(node: &mut Arc<BTreeMap<Value, Value>>) -> &mut BTreeMap<Value, Value> {
    if telemetry::enabled() && Arc::strong_count(node) > 1 {
        telemetry::counter!(names::STATE_COW_BREAKS).inc();
        let approx = node.len() * std::mem::size_of::<(Value, Value)>();
        telemetry::counter!(names::STATE_BYTES_CLONED).add(approx as u64);
    }
    Arc::make_mut(node)
}

/// Walks `keys` through nested maps, returning the addressed value.
pub fn descend<'v>(mut value: &'v Value, keys: &[Value]) -> Option<&'v Value> {
    for k in keys {
        match value {
            Value::Map(m) => value = m.get(k)?,
            _ => return None,
        }
    }
    Some(value)
}

/// Inserts `new` at the nested key path inside `root`, creating intermediate
/// maps as needed. `root` must be a map if `keys` is non-empty. Shared map
/// nodes along the path are copied (copy-on-write); untouched siblings stay
/// shared with the original tree.
pub fn insert_at(root: &mut Value, keys: &[Value], new: Value) {
    match keys.split_first() {
        None => *root = new,
        Some((k, rest)) => {
            let Value::Map(m) = root else {
                // Type checker guarantees map shape; recover by replacing.
                *root = Value::empty_map();
                return insert_at(root, keys, new);
            };
            let entry = map_make_mut(m).entry(k.clone()).or_insert_with(Value::empty_map);
            insert_at(entry, rest, new);
        }
    }
}

/// Removes the entry at the nested key path inside `root`. No-op if any
/// prefix is missing — checked up front so absent deletes never trigger a
/// copy-on-write break.
pub fn delete_at(root: &mut Value, keys: &[Value]) {
    if descend(root, keys).is_none() {
        return;
    }
    delete_at_present(root, keys);
}

fn delete_at_present(root: &mut Value, keys: &[Value]) {
    let Some((k, rest)) = keys.split_first() else { return };
    let Value::Map(m) = root else { return };
    let m = map_make_mut(m);
    if rest.is_empty() {
        m.remove(k);
    } else if let Some(child) = m.get_mut(k) {
        delete_at_present(child, rest);
    }
}

/// A plain in-memory field store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InMemoryState {
    fields: BTreeMap<String, Value>,
}

impl InMemoryState {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a store from initial field values.
    pub fn from_fields(fields: BTreeMap<String, Value>) -> Self {
        InMemoryState { fields }
    }

    /// All fields, by name.
    pub fn fields(&self) -> &BTreeMap<String, Value> {
        &self.fields
    }

    /// Consumes the store, returning the fields.
    pub fn into_fields(self) -> BTreeMap<String, Value> {
        self.fields
    }

    /// Removes a whole field. Used by transaction journals to undo a store
    /// into a previously-nonexistent field.
    pub fn remove_field(&mut self, field: &str) {
        self.fields.remove(field);
    }
}

impl StateStore for InMemoryState {
    fn load(&self, field: &str) -> Option<Value> {
        self.fields.get(field).cloned()
    }

    fn store(&mut self, field: &str, value: Value) {
        self.fields.insert(field.to_string(), value);
    }

    fn map_get(&self, field: &str, keys: &[Value]) -> Option<Value> {
        descend(self.fields.get(field)?, keys).cloned()
    }

    fn map_update(&mut self, field: &str, keys: &[Value], value: Value) {
        let root = self.fields.entry(field.to_string()).or_insert_with(Value::empty_map);
        insert_at(root, keys, value);
    }

    fn map_exists(&self, field: &str, keys: &[Value]) -> bool {
        // Clone-free override: the default would clone a whole sub-map via
        // `map_get` just to test presence.
        self.fields.get(field).is_some_and(|root| descend(root, keys).is_some())
    }

    fn map_delete(&mut self, field: &str, keys: &[Value]) {
        if let Some(root) = self.fields.get_mut(field) {
            delete_at(root, keys);
        }
    }
}

/// Per-field pending writes inside a [`CowState`].
#[derive(Debug, Clone)]
enum FieldOverlay {
    /// The whole field was overwritten (`None`: field deleted).
    Whole(Option<Value>),
    /// Entry-level writes over the base field: key path → new value
    /// (`None`: tombstone for a deleted entry). Invariant: no recorded path
    /// is a proper prefix of another — a write below an existing entry folds
    /// into that entry's value, and a write above evicts the deeper entries
    /// it shadows. Merged reads rely on this to consult at most one entry
    /// per lookup.
    Entries(BTreeMap<Vec<Value>, Option<Value>>),
}

/// A copy-on-write working store: a component-level overlay of pending
/// writes over an `Arc`-shared [`InMemoryState`] base.
///
/// This is how an executor obtains a private, mutable view of a contract's
/// storage without copying it. The base is the epoch-start snapshot, shared
/// by every shard and every parallel worker; all writes land in the overlay.
/// Reads consult the overlay first and fall back to the base.
///
/// Cost model: [`CowState::new`] is O(1); [`CowState::fork`] is O(pending
/// writes); [`CowState::snapshot`] of an untouched store is O(1). Point
/// reads and writes never materialise base maps — only a whole-map `load`
/// over a field with entry-level pending writes pays O(field) to merge, the
/// same a deep-cloning store would have paid on every read.
#[derive(Debug, Clone, Default)]
pub struct CowState {
    base: Arc<InMemoryState>,
    overlay: BTreeMap<Sym, FieldOverlay>,
}

impl CowState {
    /// A working store over a shared base. O(1): no field is copied.
    pub fn new(base: Arc<InMemoryState>) -> CowState {
        CowState { base, overlay: BTreeMap::new() }
    }

    /// Convenience: wraps an owned store as the base.
    pub fn from_store(base: InMemoryState) -> CowState {
        CowState::new(Arc::new(base))
    }

    /// The shared base this overlay was created from.
    pub fn base(&self) -> &Arc<InMemoryState> {
        &self.base
    }

    /// True if no writes are pending (reads are served straight from base).
    pub fn is_clean(&self) -> bool {
        self.overlay.is_empty()
    }

    /// Number of fields with pending writes.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// The pending write-set as `(field, key-path)` components — exactly the
    /// state the overlay would change if flattened. Whole-field writes
    /// surface as an empty key path.
    pub fn write_set(&self) -> Vec<(String, Vec<Value>)> {
        let mut out = Vec::new();
        for (field, ov) in &self.overlay {
            let name = field.as_str();
            match ov {
                FieldOverlay::Whole(_) => out.push((name.to_string(), Vec::new())),
                FieldOverlay::Entries(entries) => {
                    for path in entries.keys() {
                        out.push((name.to_string(), path.clone()));
                    }
                }
            }
        }
        // The overlay iterates in intern-id order; report canonically.
        out.sort();
        out
    }

    /// Forks an independent working store sharing the same base. O(pending
    /// writes): the base is never copied, and overlay values are Arc-shared.
    pub fn fork(&self) -> CowState {
        telemetry::counter!(names::STATE_FORKS).inc();
        self.clone()
    }

    /// Flattens overlay over base into a standalone snapshot. O(1) when the
    /// overlay is empty (the common per-shard case: contracts a packet never
    /// touched); otherwise O(base fields + pending writes) with all values
    /// structurally shared.
    pub fn snapshot(&self) -> Arc<InMemoryState> {
        telemetry::counter!(names::STATE_SNAPSHOTS).inc();
        if self.overlay.is_empty() {
            return Arc::clone(&self.base);
        }
        let mut fields = self.base.fields.clone();
        for (field, ov) in &self.overlay {
            let name = field.as_str();
            match ov {
                FieldOverlay::Whole(Some(v)) => {
                    fields.insert(name.to_string(), v.clone());
                }
                FieldOverlay::Whole(None) => {
                    fields.remove(name);
                }
                FieldOverlay::Entries(entries) => {
                    let root = fields.entry(name.to_string()).or_insert_with(Value::empty_map);
                    for (path, slot) in entries {
                        match slot {
                            Some(v) => insert_at(root, path, v.clone()),
                            None => delete_at(root, path),
                        }
                    }
                }
            }
        }
        Arc::new(InMemoryState { fields })
    }

    /// Removes a whole field (journal undo for a store into a
    /// previously-nonexistent field). If the base never had the field,
    /// dropping the overlay record restores the pristine view.
    pub fn remove_field(&mut self, field: &str) {
        let sym = intern(field);
        if self.base.fields.contains_key(field) {
            self.overlay.insert(sym, FieldOverlay::Whole(None));
        } else {
            self.overlay.remove(&sym);
        }
    }

    /// Finds the unique overlay entry whose path is a (non-strict) prefix of
    /// `keys`, if any. Uniqueness follows from the no-prefix invariant.
    fn prefix_len(entries: &BTreeMap<Vec<Value>, Option<Value>>, keys: &[Value]) -> Option<usize> {
        (1..=keys.len()).find(|&l| entries.contains_key(&keys[..l]))
    }

    /// Entries strictly below `keys` (their paths extend it).
    fn below<'e>(
        entries: &'e BTreeMap<Vec<Value>, Option<Value>>,
        keys: &[Value],
    ) -> impl Iterator<Item = (&'e Vec<Value>, &'e Option<Value>)> {
        let keys = keys.to_vec();
        entries
            .iter()
            .filter(move |(p, _)| p.len() > keys.len() && p[..keys.len()] == keys[..])
    }

    /// Would a tombstone at `keys` lose materialisation a plain store keeps?
    ///
    /// Deleting at `keys` drops every overlay entry at or below it. A
    /// dropped `Some` entry, when merged, materialised intermediate maps
    /// along its path (exactly as `insert_at` does in a plain store) — and
    /// plain-store deletion only removes the leaf, leaving those
    /// intermediates behind. A bare tombstone reproduces that only if every
    /// strict prefix of `keys` stays map-shaped some other way: in the base,
    /// or via a surviving `Some` entry. Otherwise the field must be
    /// flattened into a whole-field overlay before deleting.
    fn delete_needs_flatten(
        &self,
        field: &str,
        entries: &BTreeMap<Vec<Value>, Option<Value>>,
        keys: &[Value],
    ) -> bool {
        let at_or_below = |q: &[Value]| q.len() >= keys.len() && q[..keys.len()] == *keys;
        if !entries.iter().any(|(q, s)| s.is_some() && at_or_below(q)) {
            // Only tombstones vanish; they never materialised anything.
            return false;
        }
        let base_field = self.base.fields.get(field);
        let surviving_some = |j: usize| {
            entries
                .iter()
                .any(|(q, s)| s.is_some() && q.len() > j && q[..j] == keys[..j] && !at_or_below(q))
        };
        // The field root: a non-map base value was destroyed by the first
        // map write (insert_at's recovery) and must stay destroyed.
        let root_ok = match base_field {
            None | Some(Value::Map(_)) => true,
            Some(_) => surviving_some(0),
        };
        if !root_ok {
            return true;
        }
        (1..keys.len()).any(|j| {
            let base_is_map = base_field
                .and_then(|r| descend(r, &keys[..j]))
                .is_some_and(|v| matches!(v, Value::Map(_)));
            !base_is_map && !surviving_some(j)
        })
    }
}

impl StateStore for CowState {
    fn load(&self, field: &str) -> Option<Value> {
        self.load_sym(intern(field))
    }

    fn store(&mut self, field: &str, value: Value) {
        self.store_sym(intern(field), value);
    }

    fn map_get(&self, field: &str, keys: &[Value]) -> Option<Value> {
        self.map_get_sym(intern(field), keys)
    }

    fn map_update(&mut self, field: &str, keys: &[Value], value: Value) {
        self.map_update_sym(intern(field), keys, value);
    }

    fn map_exists(&self, field: &str, keys: &[Value]) -> bool {
        self.map_exists_sym(intern(field), keys)
    }

    fn map_delete(&mut self, field: &str, keys: &[Value]) {
        self.map_delete_sym(intern(field), keys);
    }

    fn load_sym(&self, field: Sym) -> Option<Value> {
        match self.overlay.get(&field) {
            None => self.base.fields.get(field.as_str()).cloned(),
            Some(FieldOverlay::Whole(v)) => v.clone(),
            Some(FieldOverlay::Entries(entries)) => {
                // Whole-map read over entry-level writes: merge on demand.
                let mut root = self
                    .base
                    .fields
                    .get(field.as_str())
                    .cloned()
                    .unwrap_or_else(Value::empty_map);
                for (path, slot) in entries {
                    match slot {
                        Some(v) => insert_at(&mut root, path, v.clone()),
                        None => delete_at(&mut root, path),
                    }
                }
                Some(root)
            }
        }
    }

    fn store_sym(&mut self, field: Sym, value: Value) {
        self.overlay.insert(field, FieldOverlay::Whole(Some(value)));
    }

    fn map_get_sym(&self, field: Sym, keys: &[Value]) -> Option<Value> {
        if keys.is_empty() {
            return self.load_sym(field);
        }
        match self.overlay.get(&field) {
            None => descend(self.base.fields.get(field.as_str())?, keys).cloned(),
            Some(FieldOverlay::Whole(v)) => descend(v.as_ref()?, keys).cloned(),
            Some(FieldOverlay::Entries(entries)) => {
                if let Some(plen) = Self::prefix_len(entries, keys) {
                    // An overlay write at or above the path shadows base.
                    return descend(entries[&keys[..plen]].as_ref()?, &keys[plen..]).cloned();
                }
                let base_sub = self
                    .base
                    .fields
                    .get(field.as_str())
                    .and_then(|root| descend(root, keys))
                    .cloned();
                let mut deeper = Self::below(entries, keys).peekable();
                if deeper.peek().is_none() {
                    return base_sub;
                }
                // Pending writes below the path: materialise the sub-map.
                // An insert below a base-absent path creates it (matching
                // `insert_at`'s intermediate-map materialisation).
                let mut root = match base_sub {
                    Some(v) => v,
                    None if entries.iter().any(|(p, s)| {
                        s.is_some() && p.len() > keys.len() && p[..keys.len()] == *keys
                    }) =>
                    {
                        Value::empty_map()
                    }
                    None => return None,
                };
                for (path, slot) in deeper {
                    match slot {
                        Some(v) => insert_at(&mut root, &path[keys.len()..], v.clone()),
                        None => delete_at(&mut root, &path[keys.len()..]),
                    }
                }
                Some(root)
            }
        }
    }

    fn map_update_sym(&mut self, field: Sym, keys: &[Value], value: Value) {
        if keys.is_empty() {
            // A whole-field map write; same net effect as `store`.
            self.store_sym(field, value);
            return;
        }
        match self.overlay.get_mut(&field) {
            Some(FieldOverlay::Whole(Some(root))) => insert_at(root, keys, value),
            Some(slot @ FieldOverlay::Whole(None)) => {
                // Field was deleted; recreate it, as `map_update` on a plain
                // store materialises a fresh empty map.
                let mut root = Value::empty_map();
                insert_at(&mut root, keys, value);
                *slot = FieldOverlay::Whole(Some(root));
            }
            Some(FieldOverlay::Entries(entries)) => {
                if let Some(plen) = Self::prefix_len(entries, keys) {
                    let slot = entries.get_mut(&keys[..plen]).expect("prefix entry");
                    if plen == keys.len() {
                        *slot = Some(value);
                    } else {
                        let root = slot.get_or_insert_with(Value::empty_map);
                        insert_at(root, &keys[plen..], value);
                    }
                } else {
                    // Evict deeper entries this write shadows, then record it.
                    let doomed: Vec<Vec<Value>> =
                        Self::below(entries, keys).map(|(p, _)| p.clone()).collect();
                    for p in doomed {
                        entries.remove(&p);
                    }
                    entries.insert(keys.to_vec(), Some(value));
                }
            }
            None => {
                let mut entries = BTreeMap::new();
                entries.insert(keys.to_vec(), Some(value));
                self.overlay.insert(field, FieldOverlay::Entries(entries));
            }
        }
    }

    fn map_exists_sym(&self, field: Sym, keys: &[Value]) -> bool {
        match self.overlay.get(&field) {
            None => self.base.map_exists(field.as_str(), keys),
            Some(FieldOverlay::Whole(v)) => {
                v.as_ref().is_some_and(|root| descend(root, keys).is_some())
            }
            Some(FieldOverlay::Entries(entries)) => {
                if keys.is_empty() {
                    // The field exists: entry overlays only form over an
                    // existing base field or a materialising insert.
                    return true;
                }
                if let Some(plen) = Self::prefix_len(entries, keys) {
                    return entries[&keys[..plen]]
                        .as_ref()
                        .is_some_and(|root| descend(root, &keys[plen..]).is_some());
                }
                // An insert below the path materialises every prefix of it.
                if Self::below(entries, keys).any(|(_, slot)| slot.is_some()) {
                    return true;
                }
                // Tombstones below remove entries, never the sub-map itself,
                // so base existence stands.
                self.base.map_exists(field.as_str(), keys)
            }
        }
    }

    fn map_delete_sym(&mut self, field: Sym, keys: &[Value]) {
        if keys.is_empty() {
            return;
        }
        // Decide first with shared borrows: the exactness check (and the
        // flatten fallback's `load`) needs the whole overlay.
        let flatten = match self.overlay.get(&field) {
            Some(FieldOverlay::Entries(entries)) => match Self::prefix_len(entries, keys) {
                // A delete inside a pinned sub-map value is always exact.
                Some(plen) if plen < keys.len() => false,
                _ => self.delete_needs_flatten(field.as_str(), entries, keys),
            },
            _ => false,
        };
        if flatten {
            // A bare tombstone would forget intermediate maps that the
            // dropped overlay writes materialised (a plain store keeps them
            // through deletes): pin the merged field and delete inside it.
            let mut merged = self.load_sym(field).unwrap_or_else(Value::empty_map);
            delete_at(&mut merged, keys);
            self.overlay.insert(field, FieldOverlay::Whole(Some(merged)));
            return;
        }
        match self.overlay.get_mut(&field) {
            Some(FieldOverlay::Whole(Some(root))) => delete_at(root, keys),
            Some(FieldOverlay::Whole(None)) => {}
            Some(FieldOverlay::Entries(entries)) => {
                if let Some(plen) = Self::prefix_len(entries, keys) {
                    let slot = entries.get_mut(&keys[..plen]).expect("prefix entry");
                    if plen == keys.len() {
                        // Tombstone, not removal: the base may hold an older
                        // value at this path that must stay shadowed.
                        *slot = None;
                    } else if let Some(root) = slot {
                        delete_at(root, &keys[plen..]);
                    }
                } else {
                    let doomed: Vec<Vec<Value>> =
                        Self::below(entries, keys).map(|(p, _)| p.clone()).collect();
                    for p in doomed {
                        entries.remove(&p);
                    }
                    entries.insert(keys.to_vec(), None);
                }
            }
            None => {
                // Deleting in a field the base never had is a no-op; do not
                // fabricate an overlay (it would make the field "exist").
                if self.base.fields.contains_key(field.as_str()) {
                    let mut entries = BTreeMap::new();
                    entries.insert(keys.to_vec(), None);
                    self.overlay.insert(field, FieldOverlay::Entries(entries));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(b: u8) -> Value {
        Value::address([b; 20])
    }

    #[test]
    fn nested_update_creates_intermediate_maps() {
        let mut s = InMemoryState::new();
        s.store("allow", Value::empty_map());
        s.map_update("allow", &[addr(1), addr(2)], Value::Uint(128, 9));
        assert_eq!(s.map_get("allow", &[addr(1), addr(2)]), Some(Value::Uint(128, 9)));
        assert!(s.map_exists("allow", &[addr(1)]));
        assert!(!s.map_exists("allow", &[addr(3)]));
    }

    #[test]
    fn delete_removes_only_target() {
        let mut s = InMemoryState::new();
        s.map_update("m", &[addr(1)], Value::Uint(128, 1));
        s.map_update("m", &[addr(2)], Value::Uint(128, 2));
        s.map_delete("m", &[addr(1)]);
        assert_eq!(s.map_get("m", &[addr(1)]), None);
        assert_eq!(s.map_get("m", &[addr(2)]), Some(Value::Uint(128, 2)));
        // Deleting a missing path is a no-op.
        s.map_delete("m", &[addr(9), addr(9)]);
    }

    #[test]
    fn partial_key_path_returns_submap() {
        let mut s = InMemoryState::new();
        s.map_update("m", &[addr(1), addr(2)], Value::Uint(128, 7));
        match s.map_get("m", &[addr(1)]) {
            Some(Value::Map(sub)) => assert_eq!(sub.len(), 1),
            other => panic!("expected submap, got {other:?}"),
        }
    }

    #[test]
    fn whole_field_load_store() {
        let mut s = InMemoryState::new();
        s.store("n", Value::Uint(128, 3));
        assert_eq!(s.load("n"), Some(Value::Uint(128, 3)));
        assert_eq!(s.load("missing"), None);
    }

    #[test]
    fn cloned_map_values_share_until_written() {
        let mut s = InMemoryState::new();
        s.map_update("m", &[addr(1)], Value::Uint(128, 1));
        let before = s.load("m").unwrap();
        s.map_update("m", &[addr(2)], Value::Uint(128, 2));
        // The clone read out earlier is unaffected by the later write.
        let Value::Map(m) = &before else { panic!("expected map") };
        assert_eq!(m.len(), 1);
        let Some(Value::Map(after)) = s.load("m") else { panic!("expected map") };
        assert_eq!(after.len(), 2);
    }

    fn base_with_balances() -> Arc<InMemoryState> {
        let mut s = InMemoryState::new();
        s.map_update("balances", &[addr(1)], Value::Uint(128, 100));
        s.map_update("balances", &[addr(2)], Value::Uint(128, 200));
        s.store("total", Value::Uint(128, 300));
        Arc::new(s)
    }

    #[test]
    fn cow_reads_fall_through_to_base() {
        let cow = CowState::new(base_with_balances());
        assert_eq!(cow.map_get("balances", &[addr(1)]), Some(Value::Uint(128, 100)));
        assert_eq!(cow.load("total"), Some(Value::Uint(128, 300)));
        assert!(cow.map_exists("balances", &[addr(2)]));
        assert!(!cow.map_exists("balances", &[addr(9)]));
        assert!(cow.is_clean());
    }

    #[test]
    fn cow_writes_shadow_base_and_leave_it_untouched() {
        let base = base_with_balances();
        let mut cow = CowState::new(Arc::clone(&base));
        cow.map_update("balances", &[addr(1)], Value::Uint(128, 50));
        cow.map_delete("balances", &[addr(2)]);
        cow.store("total", Value::Uint(128, 150));
        assert_eq!(cow.map_get("balances", &[addr(1)]), Some(Value::Uint(128, 50)));
        assert_eq!(cow.map_get("balances", &[addr(2)]), None);
        assert!(!cow.map_exists("balances", &[addr(2)]));
        assert_eq!(cow.load("total"), Some(Value::Uint(128, 150)));
        // Base unchanged.
        assert_eq!(base.map_get("balances", &[addr(1)]), Some(Value::Uint(128, 100)));
        assert_eq!(base.load("total"), Some(Value::Uint(128, 300)));
    }

    #[test]
    fn cow_whole_map_load_merges_overlay() {
        let mut cow = CowState::new(base_with_balances());
        cow.map_update("balances", &[addr(3)], Value::Uint(128, 7));
        cow.map_delete("balances", &[addr(1)]);
        let Some(Value::Map(m)) = cow.load("balances") else { panic!("expected map") };
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&addr(3)), Some(&Value::Uint(128, 7)));
        assert!(!m.contains_key(&addr(1)));
    }

    #[test]
    fn cow_snapshot_of_clean_store_is_same_allocation() {
        let base = base_with_balances();
        let cow = CowState::new(Arc::clone(&base));
        let snap = cow.snapshot();
        assert!(Arc::ptr_eq(&base, &snap));
    }

    #[test]
    fn cow_snapshot_flattens_to_plain_semantics() {
        let base = base_with_balances();
        let mut cow = CowState::new(Arc::clone(&base));
        let mut plain = (*base).clone();
        for s in [&mut cow as &mut dyn StateStore, &mut plain as &mut dyn StateStore] {
            s.map_update("balances", &[addr(1)], Value::Uint(128, 1));
            s.map_delete("balances", &[addr(2)]);
            s.map_update("allow", &[addr(1), addr(2)], Value::Uint(128, 5));
            s.store("total", Value::Uint(128, 1));
        }
        assert_eq!(*cow.snapshot(), plain);
    }

    #[test]
    fn cow_fork_isolates_writes() {
        let mut cow = CowState::new(base_with_balances());
        cow.map_update("balances", &[addr(1)], Value::Uint(128, 1));
        let mut fork = cow.fork();
        fork.map_update("balances", &[addr(1)], Value::Uint(128, 2));
        fork.map_update("balances", &[addr(2)], Value::Uint(128, 9));
        assert_eq!(cow.map_get("balances", &[addr(1)]), Some(Value::Uint(128, 1)));
        assert_eq!(cow.map_get("balances", &[addr(2)]), Some(Value::Uint(128, 200)));
        assert_eq!(fork.map_get("balances", &[addr(1)]), Some(Value::Uint(128, 2)));
    }

    #[test]
    fn cow_remove_field_tombstones_and_recreates() {
        let mut cow = CowState::new(base_with_balances());
        cow.remove_field("balances");
        assert_eq!(cow.load("balances"), None);
        assert!(!cow.map_exists("balances", &[addr(1)]));
        cow.map_update("balances", &[addr(5)], Value::Uint(128, 5));
        let Some(Value::Map(m)) = cow.load("balances") else { panic!("expected map") };
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn cow_delete_in_unknown_field_stays_clean() {
        let mut cow = CowState::new(base_with_balances());
        cow.map_delete("no_such_field", &[addr(1)]);
        assert!(cow.is_clean());
        assert_eq!(cow.load("no_such_field"), None);
    }

    #[test]
    fn cow_prefix_writes_fold_into_overlay() {
        let mut cow = CowState::new(Arc::new(InMemoryState::new()));
        // Deep write first, then a shallower write that shadows it, then a
        // deep write folding into the shallow entry.
        cow.map_update("allow", &[addr(1), addr(2)], Value::Uint(128, 1));
        cow.map_update("allow", &[addr(1)], Value::empty_map());
        assert_eq!(cow.map_get("allow", &[addr(1), addr(2)]), None);
        cow.map_update("allow", &[addr(1), addr(3)], Value::Uint(128, 3));
        assert_eq!(cow.map_get("allow", &[addr(1), addr(3)]), Some(Value::Uint(128, 3)));
        assert!(cow.map_exists("allow", &[addr(1)]));
        let Some(Value::Map(sub)) = cow.map_get("allow", &[addr(1)]) else {
            panic!("expected submap")
        };
        assert_eq!(sub.len(), 1);
    }
}
