//! The eight contract workloads of the paper's throughput evaluation
//! (Fig. 14): FT fund, FT transfer, CF donate, NFT mint, NFT transfer,
//! ProofIPFS register, UD bestow, UD config.

use chain::address::Address;
use chain::tx::Transaction;
use cosplit_analysis::signature::WeakReads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scilla::value::Value;

/// Which Fig. 14 workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Fungible-token transfers from a single source to many destinations.
    FtFund,
    /// Fungible-token transfers between random users.
    FtTransfer,
    /// Crowdfunding donations from many users.
    CfDonate,
    /// NFT minting by the single minter (scales despite the single source —
    /// ownership follows the token id, paper §5.2.1).
    NftMint,
    /// NFT transfers between random owners.
    NftTransfer,
    /// ProofIPFS hash notarisations (two-field footprint, limited scaling).
    IpfsRegister,
    /// UD registry: admin grants fresh domains.
    UdBestow,
    /// UD registry: owners update their domains' resolver records.
    UdConfig,
    /// Cross-contract relay chain: users ping a `TestRelay` whose `Relay`
    /// transition forwards to a statically-known `TestReceiver`. Not part of
    /// Fig. 14 ([`Kind::all`]); exercises interprocedural composition — with
    /// `compose_calls` off every transaction serialises at the DS committee,
    /// with it on the composed chain dispatches shard-local.
    RelayPing,
    /// FungibleToken airdrop claims keyed by `sha256hash(proof)`. Not part
    /// of Fig. 14 ([`Kind::all`]); exercises the precision frontier between
    /// the legacy and flow-sensitive analyses — the legacy Fig-6 accumulator
    /// collapses `ClaimAirdrop` to ⊤ (computed map key), so every claim
    /// serialises at the DS committee, while the refined analysis derives
    /// the key and the claims dispatch shard-local.
    FtAirdrop,
}

impl Kind {
    /// All Fig. 14 workloads, in the figure's order.
    pub fn all() -> [Kind; 8] {
        [
            Kind::FtFund,
            Kind::FtTransfer,
            Kind::CfDonate,
            Kind::NftMint,
            Kind::NftTransfer,
            Kind::IpfsRegister,
            Kind::UdBestow,
            Kind::UdConfig,
        ]
    }

    /// The label used in the paper's figure.
    pub fn label(&self) -> &'static str {
        match self {
            Kind::FtFund => "FT fund",
            Kind::FtTransfer => "FT transfer",
            Kind::CfDonate => "CF donate",
            Kind::NftMint => "NFT mint",
            Kind::NftTransfer => "NFT transfer",
            Kind::IpfsRegister => "ProofIPFS register",
            Kind::UdBestow => "UD bestow",
            Kind::UdConfig => "UD config",
            Kind::RelayPing => "Relay ping",
            Kind::FtAirdrop => "FT airdrop",
        }
    }
}

/// A secondary contract a scenario deploys *before* its primary (the primary
/// may reference its address in `params`, as `RelayPing`'s `sink` does).
#[derive(Debug, Clone)]
pub struct ExtraDeployment {
    /// Where the contract lives.
    pub addr: Address,
    /// Corpus contract to deploy there.
    pub corpus_name: &'static str,
    /// Deployment parameters.
    pub params: Vec<(String, Value)>,
    /// Transitions to shard when CoSplit is on.
    pub sharded_transitions: Vec<&'static str>,
}

/// A fully-specified benchmark scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The workload.
    pub kind: Kind,
    /// Corpus contract to deploy.
    pub corpus_name: &'static str,
    /// Deployment parameters.
    pub params: Vec<(String, Value)>,
    /// Transitions to shard (the "reasonable signature informed by expected
    /// usage" of §5.2).
    pub sharded_transitions: Vec<&'static str>,
    /// Number of user accounts to fund.
    pub users: u64,
    /// Which stale reads the deployer accepts (paper §4.2.3). The default
    /// `AcceptAll` enables Strategy 2 (IntMerge); `Fields(∅)` is the
    /// ownership-only ablation.
    pub weak_reads: WeakReads,
    /// Secondary contracts deployed before the primary (empty for the
    /// single-contract Fig. 14 workloads).
    pub extra: Vec<ExtraDeployment>,
    /// Setup transactions, committed before measurement starts.
    pub setup: Vec<Transaction>,
    /// The measured load.
    pub load: Vec<Transaction>,
}

/// The fixed address the scenario contract is deployed at.
pub fn contract_addr() -> Address {
    Address::from_index(77_000_000)
}

/// The administrative account (contract owner / minter / registry admin).
pub fn admin() -> Address {
    Address::from_index(88_000_000)
}

/// The fixed address `RelayPing`'s secondary `TestReceiver` is deployed at.
pub fn receiver_addr() -> Address {
    Address::from_index(77_000_001)
}

fn user(i: u64) -> Address {
    Address::from_index(i)
}

fn uint(v: u128) -> Value {
    Value::Uint(128, v)
}

fn node(i: u64) -> Value {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&i.to_be_bytes());
    Value::ByStr(bytes.to_vec())
}

fn token_id(i: u64) -> Value {
    Value::Uint(256, i as u128)
}

/// Builds a scenario with `load_txs` measured transactions over `users`
/// accounts, deterministically from `seed`.
pub fn build(kind: Kind, users: u64, load_txs: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(crate::seeds::derive(seed, "scenario"));
    build_with_rng(kind, users, load_txs, &mut rng)
}

/// [`build`] drawing from a caller-owned RNG, so several scenarios (and the
/// simulation's fault plans) can flow from one master seed with no ambient
/// seeding anywhere — the determinism guarantee of `chain::sim`.
pub fn build_with_rng(kind: Kind, users: u64, load_txs: usize, rng: &mut StdRng) -> Scenario {
    let c = contract_addr();
    let mut id = 1u64;
    let mut next_id = || {
        id += 1;
        id
    };
    // Per-account nonce counters (admin uses index u64::MAX).
    let mut nonces: std::collections::HashMap<u64, u64> = Default::default();
    let mut next_nonce = |who: u64| -> u64 {
        let n = nonces.entry(who).or_insert(0);
        *n += 1;
        *n
    };
    const ADMIN: u64 = u64::MAX;

    match kind {
        Kind::FtFund | Kind::FtTransfer => {
            let params = vec![
                ("contract_owner".to_string(), admin().to_value()),
                ("name".to_string(), Value::Str("Gold".into())),
                ("symbol".to_string(), Value::Str("GLD".into())),
                ("init_supply".to_string(), uint(0)),
            ];
            let single_source = kind == Kind::FtFund;
            // Mint: everyone gets a balance; for the fund workload only the
            // source really needs one, but funding all keeps setups equal.
            let mut setup = Vec::new();
            for i in 0..users {
                setup.push(Transaction::call(
                    next_id(),
                    admin(),
                    next_nonce(ADMIN),
                    c,
                    "Mint",
                    vec![("to".into(), user(i).to_value()), ("amount".into(), uint(100_000_000))],
                ));
            }
            let load = (0..load_txs)
                .map(|_| {
                    let from = if single_source { 0 } else { rng.gen_range(0..users) };
                    let mut to = rng.gen_range(0..users);
                    while to == from {
                        to = rng.gen_range(0..users);
                    }
                    Transaction::call(
                        next_id(),
                        user(from),
                        next_nonce(from),
                        c,
                        "Transfer",
                        vec![
                            ("to".into(), user(to).to_value()),
                            ("amount".into(), uint(rng.gen_range(1..50))),
                        ],
                    )
                })
                .collect();
            Scenario {
                kind,
                corpus_name: "FungibleToken",
                params,
                weak_reads: WeakReads::AcceptAll,
                sharded_transitions: vec![
                    "Mint",
                    "Burn",
                    "Transfer",
                    "TransferFrom",
                    "IncreaseAllowance",
                    "DecreaseAllowance",
                ],
                users,
                extra: Vec::new(),
                setup,
                load,
            }
        }
        Kind::CfDonate => {
            let params = vec![
                ("campaign_owner".to_string(), admin().to_value()),
                ("max_block".to_string(), Value::BNum(1_000_000)),
                ("goal".to_string(), uint(1_000_000_000)),
            ];
            let load = (0..load_txs)
                .map(|_| {
                    let donor = rng.gen_range(0..users);
                    Transaction::call(next_id(), user(donor), next_nonce(donor), c, "Donate", vec![])
                        .with_amount(rng.gen_range(10..1_000))
                })
                .collect();
            Scenario {
                kind,
                corpus_name: "Crowdfunding",
                params,
                weak_reads: WeakReads::AcceptAll,
                sharded_transitions: vec!["Donate", "ClaimBack"],
                users,
                extra: Vec::new(),
                setup: Vec::new(),
                load,
            }
        }
        Kind::NftMint | Kind::NftTransfer => {
            let params = vec![
                ("contract_owner".to_string(), admin().to_value()),
                ("name".to_string(), Value::Str("Kitties".into())),
                ("symbol".to_string(), Value::Str("KIT".into())),
            ];
            let mut setup = Vec::new();
            let load = if kind == Kind::NftMint {
                // Single-source workload: the minter creates fresh tokens.
                (0..load_txs)
                    .map(|i| {
                        Transaction::call(
                            next_id(),
                            admin(),
                            next_nonce(ADMIN),
                            c,
                            "Mint",
                            vec![
                                ("to".into(), user(i as u64 % users).to_value()),
                                ("token_id".into(), token_id(1_000 + i as u64)),
                            ],
                        )
                    })
                    .collect()
            } else {
                // Every user owns `k` tokens and transfers them around.
                let per_user = (load_txs as u64 / users + 1).max(1);
                for i in 0..users {
                    for j in 0..per_user {
                        setup.push(Transaction::call(
                            next_id(),
                            admin(),
                            next_nonce(ADMIN),
                            c,
                            "Mint",
                            vec![
                                ("to".into(), user(i).to_value()),
                                ("token_id".into(), token_id(i * per_user + j)),
                            ],
                        ));
                    }
                }
                // Each token transferred once (compare-and-swap supplies the
                // current owner as an argument, §6).
                let mut k = 0u64;
                (0..load_txs)
                    .map(|_| {
                        let owner_idx = k / per_user % users;
                        let tid = k % (users * per_user);
                        k += 1;
                        let mut to = rng.gen_range(0..users);
                        while to == owner_idx {
                            to = rng.gen_range(0..users);
                        }
                        Transaction::call(
                            next_id(),
                            user(owner_idx),
                            next_nonce(owner_idx),
                            c,
                            "Transfer",
                            vec![
                                ("to".into(), user(to).to_value()),
                                ("token_id".into(), token_id(tid)),
                                ("token_owner".into(), user(owner_idx).to_value()),
                            ],
                        )
                    })
                    .collect()
            };
            Scenario {
                kind,
                corpus_name: "NonfungibleToken",
                params,
                weak_reads: WeakReads::AcceptAll,
                sharded_transitions: vec!["Mint", "Transfer"],
                users,
                extra: Vec::new(),
                setup,
                load,
            }
        }
        Kind::IpfsRegister => {
            let params = vec![("initial_admin".to_string(), admin().to_value())];
            let load = (0..load_txs)
                .map(|i| {
                    let who = rng.gen_range(0..users);
                    Transaction::call(
                        next_id(),
                        user(who),
                        next_nonce(who),
                        c,
                        "Register",
                        vec![("ipfs_hash".into(), Value::Str(format!("Qm{i:060}")))],
                    )
                    .with_amount(10)
                })
                .collect();
            Scenario {
                kind,
                corpus_name: "ProofIPFS",
                params,
                weak_reads: WeakReads::AcceptAll,
                sharded_transitions: vec![
                    "Register",
                    "Gift",
                    "Donate",
                    "Withdraw",
                    "Ban",
                    "Unban",
                    "SetAnnouncement",
                    "SetContractUri",
                ],
                users,
                extra: Vec::new(),
                setup: Vec::new(),
                load,
            }
        }
        Kind::UdBestow | Kind::UdConfig => {
            let params = vec![
                ("initial_admin".to_string(), admin().to_value()),
                ("initial_root".to_string(), node(0)),
            ];
            let mut setup = Vec::new();
            let load = if kind == Kind::UdBestow {
                (0..load_txs)
                    .map(|i| {
                        Transaction::call(
                            next_id(),
                            admin(),
                            next_nonce(ADMIN),
                            c,
                            "Bestow",
                            vec![
                                ("node".into(), node(1_000_000 + i as u64)),
                                ("new_owner".into(), user(i as u64 % users).to_value()),
                                ("resolver".into(), user(i as u64 % users).to_value()),
                            ],
                        )
                    })
                    .collect()
            } else {
                // Each user owns domains; they update resolver records.
                let domains = users * 4;
                for d in 0..domains {
                    setup.push(Transaction::call(
                        next_id(),
                        admin(),
                        next_nonce(ADMIN),
                        c,
                        "Bestow",
                        vec![
                            ("node".into(), node(d)),
                            ("new_owner".into(), user(d % users).to_value()),
                            ("resolver".into(), user(d % users).to_value()),
                        ],
                    ));
                }
                (0..load_txs)
                    .map(|i| {
                        let d = rng.gen_range(0..domains);
                        let owner_idx = d % users;
                        if i % 2 == 0 {
                            Transaction::call(
                                next_id(),
                                user(owner_idx),
                                next_nonce(owner_idx),
                                c,
                                "Configure",
                                vec![
                                    ("node".into(), node(d)),
                                    ("resolver".into(), user(rng.gen_range(0..users)).to_value()),
                                ],
                            )
                        } else {
                            Transaction::call(
                                next_id(),
                                user(owner_idx),
                                next_nonce(owner_idx),
                                c,
                                "ConfigureRecord",
                                vec![
                                    ("node".into(), node(d)),
                                    ("rec_key".into(), Value::Str("crypto.ZIL.address".into())),
                                    ("rec_value".into(), Value::Str(format!("0x{i:040}"))),
                                ],
                            )
                        }
                    })
                    .collect()
            };
            Scenario {
                kind,
                corpus_name: "UD_registry",
                params,
                weak_reads: WeakReads::AcceptAll,
                sharded_transitions: vec![
                    "Bestow",
                    "Configure",
                    "ConfigureRecord",
                    "Approve",
                    "ApproveFor",
                    "SetRoot",
                ],
                users,
                extra: Vec::new(),
                setup,
                load,
            }
        }
        Kind::RelayPing => {
            // Primary: TestRelay with `sink` pointing at the secondary
            // TestReceiver — `Relay`'s send resolves statically, so with
            // `compose_calls` the whole chain dispatches shard-local.
            let load = (0..load_txs)
                .map(|_| {
                    let who = rng.gen_range(0..users);
                    Transaction::call(next_id(), user(who), next_nonce(who), c, "Relay", vec![])
                })
                .collect();
            Scenario {
                kind,
                corpus_name: "TestRelay",
                params: vec![("sink".to_string(), receiver_addr().to_value())],
                weak_reads: WeakReads::AcceptAll,
                sharded_transitions: vec!["Relay", "Fund"],
                users,
                extra: vec![ExtraDeployment {
                    addr: receiver_addr(),
                    corpus_name: "TestReceiver",
                    params: Vec::new(),
                    sharded_transitions: vec!["Hello", "Deposit"],
                }],
                setup: Vec::new(),
                load,
            }
        }
        Kind::FtAirdrop => {
            let params = vec![
                ("contract_owner".to_string(), admin().to_value()),
                ("name".to_string(), Value::Str("Gold".into())),
                ("symbol".to_string(), Value::Str("GLD".into())),
                ("init_supply".to_string(), uint(0)),
            ];
            // Each claim presents a distinct proof, so no claim aborts on
            // `AlreadyClaimed` and the whole load is commit-eligible. The
            // claimed slot is `airdrop_claimed[sha256hash(proof)]` — a key
            // only the refined analysis can summarise.
            let load = (0..load_txs)
                .map(|i| {
                    let who = rng.gen_range(0..users);
                    Transaction::call(
                        next_id(),
                        user(who),
                        next_nonce(who),
                        c,
                        "ClaimAirdrop",
                        vec![("proof".into(), Value::Str(format!("proof-{i:08}")))],
                    )
                })
                .collect();
            Scenario {
                kind,
                corpus_name: "FungibleToken",
                params,
                weak_reads: WeakReads::AcceptAll,
                sharded_transitions: vec!["Transfer", "ClaimAirdrop"],
                users,
                extra: Vec::new(),
                setup: Vec::new(),
                load,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build_with_requested_load() {
        for kind in Kind::all() {
            let s = build(kind, 20, 100, 42);
            assert_eq!(s.load.len(), 100, "{kind:?}");
            assert!(!s.sharded_transitions.is_empty());
            assert!(scilla::corpus::get(s.corpus_name).is_some());
        }
    }

    #[test]
    fn relay_ping_builds_with_its_receiver() {
        let s = build(Kind::RelayPing, 20, 100, 42);
        assert_eq!(s.load.len(), 100);
        assert!(scilla::corpus::get(s.corpus_name).is_some());
        assert_eq!(s.extra.len(), 1);
        assert!(scilla::corpus::get(s.extra[0].corpus_name).is_some());
        // The primary's `sink` param points at the secondary's address.
        assert_eq!(s.params[0].1, s.extra[0].addr.to_value());
        assert!(s.load.iter().all(|t| matches!(
            &t.kind,
            chain::tx::TxKind::Call { transition, .. } if transition == "Relay"
        )));
    }

    #[test]
    fn builds_are_deterministic() {
        let a = build(Kind::FtTransfer, 10, 50, 7);
        let b = build(Kind::FtTransfer, 10, 50, 7);
        assert_eq!(a.load, b.load);
        assert_eq!(a.setup, b.setup);
    }

    #[test]
    fn ft_fund_is_single_source() {
        let s = build(Kind::FtFund, 10, 50, 7);
        let senders: std::collections::BTreeSet<_> = s.load.iter().map(|t| t.sender).collect();
        assert_eq!(senders.len(), 1);
    }

    #[test]
    fn nonces_increase_per_sender() {
        let s = build(Kind::FtTransfer, 5, 200, 1);
        let mut last: std::collections::HashMap<_, u64> = Default::default();
        for tx in &s.load {
            let prev = last.insert(tx.sender, tx.nonce);
            if let Some(p) = prev {
                assert!(tx.nonce > p, "nonces must increase per sender");
            }
        }
    }
}
