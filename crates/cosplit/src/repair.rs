//! Automated contract repair (paper §6, "Automated Contract Repair").
//!
//! The analysis can only summarise map accesses whose keys are transition
//! parameters. A common unshardable pattern reads a value from the contract
//! state (e.g. an NFT's current owner) and then uses it as a map key:
//!
//! ```text
//! owner_opt <- token_owners[token_id];
//! match owner_opt with
//! | Some owner => … owned_token_count[owner] …   (* key from state: ⊤ *)
//! ```
//!
//! The paper's proposed repair turns the state-read key into a transition
//! parameter checked against the stored value — a compare-and-swap:
//!
//! ```text
//! transition T (…, claimed_owner : ByStr20)
//! owner_opt <- token_owners[token_id];
//! match owner_opt with
//! | Some owner =>
//!   repair_ok = builtin eq owner claimed_owner;
//!   match repair_ok with
//!   | True => … owned_token_count[claimed_owner] …  (* key is a parameter *)
//!   | False => throw
//! ```
//!
//! This module implements that transformation and proposes the rewritten
//! contract to the developer before deployment.

use crate::solver::AnalyzedContract;
use scilla::ast::*;
use scilla::span::Span;
use scilla::typechecker::{typecheck, CheckedModule};
use scilla::types::Type;
use std::collections::{HashMap, HashSet};

/// What the repair changed in one transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// The repaired transition.
    pub transition: String,
    /// New parameters added, with the state binder each one replaces.
    pub added_params: Vec<AddedParam>,
}

/// One compare-and-swap parameter introduced by the repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddedParam {
    /// The new parameter's name.
    pub param: String,
    /// Its type.
    pub ty: Type,
    /// The state-derived binder it replaces as a map key.
    pub replaces_binder: String,
}

/// The outcome of repairing a whole contract.
#[derive(Debug)]
pub struct RepairOutcome {
    /// The rewritten, re-type-checked module.
    pub checked: CheckedModule,
    /// One report per transition that was changed.
    pub reports: Vec<RepairReport>,
}

/// Attempts the §6 repair on every transition of a contract.
///
/// Only transitions whose summaries carry imprecision — a global `⊤` or a
/// localized `⊤[pf]` — are touched; precisely-summarised transitions pass
/// through unchanged. The rewritten module is re-type-checked before being
/// returned, so the repair can never produce an ill-typed contract.
///
/// # Errors
///
/// Returns the type error if the rewritten module fails to re-check — which
/// indicates a bug in the rewriter, not user error.
pub fn repair_contract(checked: &CheckedModule) -> Result<RepairOutcome, scilla::error::TypeError> {
    let analyzed = AnalyzedContract::analyze(checked);
    let mut module = checked.module.clone();
    let mut reports = Vec::new();

    for t in &mut module.contract.transitions {
        let summary = analyzed.summary(&t.name.name).expect("summary per transition");
        if !summary.has_top() && summary.top_fields().next().is_none() {
            continue;
        }
        if let Some(report) = repair_transition(t, &checked.field_types) {
            reports.push(report);
        }
    }

    let checked = typecheck(module)?;
    Ok(RepairOutcome { checked, reports })
}

/// Repairs one transition in place. Returns `None` when the transition does
/// not exhibit the repairable pattern.
fn repair_transition(t: &mut Transition, field_types: &HashMap<String, Type>) -> Option<RepairReport> {
    let mut existing: HashSet<String> = t.params.iter().map(|p| p.name.name.clone()).collect();
    let mut added = Vec::new();
    let body = std::mem::take(&mut t.body);
    let new_body = repair_stmts(body, field_types, &mut existing, &mut added);
    t.body = new_body;
    if added.is_empty() {
        return None;
    }
    for a in &added {
        t.params.push(Param { name: Ident::new(a.param.clone()), ty: a.ty.clone() });
    }
    Some(RepairReport { transition: t.name.name.clone(), added_params: added })
}

/// Walks a statement list, looking for `x ← m[ks]; match x with Some b ⇒ …`
/// where `b` is later used as a map key, and rewrites the `Some` branch with
/// a compare-and-swap guard.
fn repair_stmts(
    stmts: Vec<Stmt>,
    field_types: &HashMap<String, Type>,
    existing: &mut HashSet<String>,
    added: &mut Vec<AddedParam>,
) -> Vec<Stmt> {
    // Track binders introduced by map gets: binder → value type.
    let mut get_types: HashMap<String, Type> = HashMap::new();
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::MapGet { lhs, map, keys } => {
                if let Some((_, vt)) =
                    field_types.get(&map.name).and_then(|ft| ft.map_access(keys.len()))
                {
                    get_types.insert(lhs.name.clone(), vt.clone());
                }
                out.push(Stmt::MapGet { lhs, map, keys });
            }
            Stmt::Match { scrutinee, clauses, span } => {
                let scrutinee_type = get_types.get(&scrutinee.name).cloned();
                let clauses = clauses
                    .into_iter()
                    .map(|(pat, body)| {
                        // Recurse first so nested patterns repair too.
                        let body = repair_stmts(body, field_types, existing, added);
                        match (&pat, &scrutinee_type) {
                            (Pattern::Constructor(c, subs), Some(vt))
                                if c.name == "Some" && subs.len() == 1 =>
                            {
                                if let Pattern::Binder(b) = &subs[0] {
                                    if used_as_map_key(&body, &b.name) {
                                        let (guarded, param) =
                                            guard_branch(body, b, vt, existing);
                                        added.push(AddedParam {
                                            param: param.clone(),
                                            ty: vt.clone(),
                                            replaces_binder: b.name.clone(),
                                        });
                                        return (pat, guarded);
                                    }
                                }
                                (pat, body)
                            }
                            _ => (pat, body),
                        }
                    })
                    .collect();
                out.push(Stmt::Match { scrutinee, clauses, span });
            }
            other => out.push(other),
        }
    }
    out
}

/// Is `name` used as a map key anywhere in these statements?
fn used_as_map_key(stmts: &[Stmt], name: &str) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::MapGet { keys, .. }
        | Stmt::MapUpdate { keys, .. }
        | Stmt::MapExists { keys, .. }
        | Stmt::MapDelete { keys, .. } => keys.iter().any(|k| k.name == name),
        Stmt::Match { clauses, .. } => clauses.iter().any(|(_, body)| used_as_map_key(body, name)),
        _ => false,
    })
}

/// Wraps a `Some`-branch body in the compare-and-swap guard and substitutes
/// the state binder with the new parameter. Returns the guarded body and
/// the parameter name.
fn guard_branch(
    body: Vec<Stmt>,
    binder: &Ident,
    _ty: &Type,
    existing: &mut HashSet<String>,
) -> (Vec<Stmt>, String) {
    let mut param = format!("claimed_{}", binder.name);
    while existing.contains(&param) {
        param.push('_');
    }
    existing.insert(param.clone());

    let substituted = body.into_iter().map(|s| subst_stmt(s, &binder.name, &param)).collect();
    let check = Ident::new(format!("repair_ok_{}", binder.name));
    let guard = vec![
        Stmt::Bind {
            lhs: check.clone(),
            rhs: Expr::Builtin {
                op: Ident::new("eq"),
                args: vec![binder.clone(), Ident::new(param.clone())],
            },
        },
        Stmt::Match {
            scrutinee: check,
            clauses: vec![
                (Pattern::Constructor(Ident::new("True"), vec![]), substituted),
                (
                    Pattern::Constructor(Ident::new("False"), vec![]),
                    vec![Stmt::Throw { exception: None, span: Span::dummy() }],
                ),
            ],
            span: Span::dummy(),
        },
    ];
    (guard, param)
}

// --- identifier substitution over statements/expressions -------------------

fn subst_ident(i: Ident, from: &str, to: &str) -> Ident {
    if i.name == from {
        Ident::spanned(to, i.span)
    } else {
        i
    }
}

fn subst_stmt(s: Stmt, from: &str, to: &str) -> Stmt {
    let sub = |i: Ident| subst_ident(i, from, to);
    let sub_vec = |v: Vec<Ident>| v.into_iter().map(|i| subst_ident(i, from, to)).collect();
    match s {
        Stmt::Load { lhs, field } => Stmt::Load { lhs, field },
        Stmt::Store { field, rhs } => Stmt::Store { field, rhs: sub(rhs) },
        Stmt::Bind { lhs, rhs } => Stmt::Bind { lhs, rhs: subst_expr(rhs, from, to) },
        Stmt::MapUpdate { map, keys, rhs } => {
            Stmt::MapUpdate { map, keys: sub_vec(keys), rhs: sub(rhs) }
        }
        Stmt::MapGet { lhs, map, keys } => Stmt::MapGet { lhs, map, keys: sub_vec(keys) },
        Stmt::MapExists { lhs, map, keys } => Stmt::MapExists { lhs, map, keys: sub_vec(keys) },
        Stmt::MapDelete { map, keys } => Stmt::MapDelete { map, keys: sub_vec(keys) },
        Stmt::ReadBlockchain { lhs, query } => Stmt::ReadBlockchain { lhs, query },
        Stmt::Match { scrutinee, clauses, span } => Stmt::Match {
            scrutinee: sub(scrutinee),
            clauses: clauses
                .into_iter()
                .map(|(p, body)| {
                    // Shadowing: if the pattern rebinds `from`, leave the body.
                    if p.binders().iter().any(|b| b.name == from) {
                        (p, body)
                    } else {
                        (p, body.into_iter().map(|s| subst_stmt(s, from, to)).collect())
                    }
                })
                .collect(),
            span,
        },
        Stmt::Accept(sp) => Stmt::Accept(sp),
        Stmt::Send { msgs } => Stmt::Send { msgs: sub(msgs) },
        Stmt::Event { event } => Stmt::Event { event: sub(event) },
        Stmt::Throw { exception, span } => {
            Stmt::Throw { exception: exception.map(sub), span }
        }
    }
}

fn subst_expr(e: Expr, from: &str, to: &str) -> Expr {
    let sub = |i: Ident| subst_ident(i, from, to);
    let sub_vec = |v: Vec<Ident>| v.into_iter().map(|i| subst_ident(i, from, to)).collect();
    match e {
        Expr::Lit(l, s) => Expr::Lit(l, s),
        Expr::Var(i) => Expr::Var(sub(i)),
        Expr::Message(entries, s) => Expr::Message(
            entries
                .into_iter()
                .map(|en| MsgEntry {
                    key: en.key,
                    value: match en.value {
                        MsgValue::Var(i) => MsgValue::Var(sub(i)),
                        lit => lit,
                    },
                })
                .collect(),
            s,
        ),
        Expr::Constr { name, type_args, args } => {
            Expr::Constr { name, type_args, args: sub_vec(args) }
        }
        Expr::Builtin { op, args } => Expr::Builtin { op, args: sub_vec(args) },
        Expr::Let { bound, ann, rhs, body } => {
            let rhs = Box::new(subst_expr(*rhs, from, to));
            let body = if bound.name == from {
                body // shadowed
            } else {
                Box::new(subst_expr(*body, from, to))
            };
            Expr::Let { bound, ann, rhs, body }
        }
        Expr::Fun { param, param_type, body } => {
            let body = if param.name == from {
                body
            } else {
                Box::new(subst_expr(*body, from, to))
            };
            Expr::Fun { param, param_type, body }
        }
        Expr::App { func, args } => Expr::App { func: sub(func), args: sub_vec(args) },
        Expr::Match { scrutinee, clauses, span } => Expr::Match {
            scrutinee: sub(scrutinee),
            clauses: clauses
                .into_iter()
                .map(|(p, body)| {
                    if p.binders().iter().any(|b| b.name == from) {
                        (p, body)
                    } else {
                        (p, subst_expr(body, from, to))
                    }
                })
                .collect(),
            span,
        },
        Expr::TFun { tvar, body, span } => {
            Expr::TFun { tvar, body: Box::new(subst_expr(*body, from, to)), span }
        }
        Expr::Inst { target, type_args } => Expr::Inst { target: sub(target), type_args },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::WeakReads;
    use scilla::parser::parse_module;

    fn check(src: &str) -> CheckedModule {
        typecheck(parse_module(src).unwrap()).unwrap()
    }

    const UNSHARDABLE_NFT: &str = r#"
        library L
        let one = Uint128 1
        contract MiniNFT ()
        field owners : Map Uint256 ByStr20 = Emp Uint256 ByStr20
        field counts : Map ByStr20 Uint128 = Emp ByStr20 Uint128
        transition Burn (token_id : Uint256)
          owner_opt <- owners[token_id];
          match owner_opt with
          | Some owner =>
            ok = builtin eq _sender owner;
            match ok with
            | True =>
              delete owners[token_id];
              c_opt <- counts[owner];
              match c_opt with
              | Some c =>
                nc = builtin sub c one;
                counts[owner] := nc
              | None =>
              end
            | False => throw
            end
          | None => throw
          end
        end
    "#;

    #[test]
    fn burn_becomes_shardable_after_repair() {
        let checked = check(UNSHARDABLE_NFT);
        // Before: the state-read key localizes a ⊤ onto `counts` (the whole
        // field must be owned, not just the entry).
        let before = AnalyzedContract::analyze(&checked);
        assert!(before.summary("Burn").unwrap().has_top_field_on("counts"));

        let outcome = repair_contract(&checked).expect("repair re-typechecks");
        assert_eq!(outcome.reports.len(), 1);
        let report = &outcome.reports[0];
        assert_eq!(report.transition, "Burn");
        assert_eq!(report.added_params.len(), 1);
        assert_eq!(report.added_params[0].param, "claimed_owner");
        assert_eq!(report.added_params[0].ty, Type::address());

        // After: Burn is summarisable precisely and shardable.
        let after = AnalyzedContract::analyze(&outcome.checked);
        let burn = after.summary("Burn").unwrap();
        assert!(!burn.has_top());
        assert_eq!(burn.top_fields().count(), 0, "{burn}");
        let sig = after.query(&["Burn".into()], &WeakReads::AcceptAll);
        assert!(sig.transition("Burn").unwrap().is_shardable());
    }

    #[test]
    fn repaired_transition_gains_the_parameter() {
        let checked = check(UNSHARDABLE_NFT);
        let outcome = repair_contract(&checked).unwrap();
        let t = outcome.checked.contract().transition("Burn").unwrap();
        assert_eq!(t.params.len(), 2);
        assert_eq!(t.params[1].name.name, "claimed_owner");
    }

    #[test]
    fn shardable_transitions_are_untouched() {
        let src = r#"
            contract C ()
            field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
            transition Put (k : ByStr20, v : Uint128)
              m[k] := v
            end
        "#;
        let checked = check(src);
        let outcome = repair_contract(&checked).unwrap();
        assert!(outcome.reports.is_empty());
        assert_eq!(outcome.checked.contract().transition("Put").unwrap().params.len(), 2);
    }

    #[test]
    fn corpus_nft_burn_repairs() {
        let entry = scilla::corpus::get("NonfungibleToken").unwrap();
        let checked = check(entry.source);
        let outcome = repair_contract(&checked).unwrap();
        assert!(outcome.reports.iter().any(|r| r.transition == "Burn"), "{:?}", outcome.reports);
        let after = AnalyzedContract::analyze(&outcome.checked);
        let burn = after.summary("Burn").unwrap();
        assert!(!burn.has_top());
        assert_eq!(burn.top_fields().count(), 0, "{burn}");
    }

    #[test]
    fn computed_key_patterns_are_not_repairable() {
        // Keys built by multi-argument builtins have no dispatch-replayable
        // derivation and cannot be turned into parameters by this
        // transformation either.
        let src = r#"
            contract C ()
            field m : Map String Uint128 = Emp String Uint128
            transition T (s : String, v : Uint128)
              k = builtin concat s s;
              m[k] := v
            end
        "#;
        let checked = check(src);
        let outcome = repair_contract(&checked).unwrap();
        assert!(outcome.reports.is_empty());
        let after = AnalyzedContract::analyze(&outcome.checked);
        assert!(after.summary("T").unwrap().has_top_field_on("m"), "still imprecise, honestly");
    }
}
