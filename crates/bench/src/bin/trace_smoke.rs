//! Lifecycle-tracing smoke test for CI (`scripts/check.sh`).
//!
//! Runs a traced FungibleToken + ProofIPFS epoch batch and asserts the
//! tracing subsystem's end-to-end contract:
//!
//! - the Chrome `trace_event` export and the lifecycle export are
//!   syntactically valid JSON (validated offline, no external tools);
//! - the recorded span forest is well-formed — every parent exists, no
//!   cycles, child intervals nest inside their parents;
//! - lifecycle coverage is total: every committed transaction has a
//!   complete dispatch→commit chain with a reason attribution;
//! - tracing overhead stays under the 1.5× ceiling, and the
//!   `trace.overhead_x1000` gauge lands in the metrics snapshot.
//!
//! Usage: `trace_smoke`.

use cosplit_bench::experiments::trace_experiment;
use telemetry::trace;
use workloads::scenarios::Kind;

fn main() {
    let e = trace_experiment(&[Kind::FtTransfer, Kind::IpfsRegister], 24, 120, 2, 2, 3);
    let mut failures = 0u32;

    for r in &e.runs {
        println!(
            "  {:<20} committed {:>4}, lifecycles {:>4}, missing chains {}, ds {}, shard {}",
            r.label,
            r.committed,
            r.lifecycles.len(),
            r.missing_chains,
            r.ds,
            r.shard
        );
        if r.committed == 0 {
            eprintln!("FAIL {}: nothing committed", r.label);
            failures += 1;
        }
        if r.missing_chains != 0 {
            eprintln!(
                "FAIL {}: {} committed tx(s) without a complete dispatch->commit chain",
                r.label, r.missing_chains
            );
            failures += 1;
        }
        if r.lifecycles.iter().any(|lc| lc.committed() && lc.dispatch_reason().is_none()) {
            eprintln!("FAIL {}: committed lifecycle without a dispatch reason", r.label);
            failures += 1;
        }
    }

    if let Err(err) = trace::validate_span_tree(&e.records) {
        eprintln!("FAIL: span forest malformed: {err}");
        failures += 1;
    }
    let chrome = trace::chrome_trace_json(&e.records);
    if let Err(err) = trace::validate_json(&chrome) {
        eprintln!("FAIL: chrome trace export is not valid JSON: {err}");
        failures += 1;
    }
    for r in &e.runs {
        if let Err(err) = trace::validate_json(&trace::lifecycle_json(&r.lifecycles)) {
            eprintln!("FAIL {}: lifecycle export is not valid JSON: {err}", r.label);
            failures += 1;
        }
    }
    if e.records.is_empty() {
        eprintln!("FAIL: traced run produced no records");
        failures += 1;
    }

    println!("  tracing overhead {:.2}x (ceiling 1.50x), {} records", e.overhead, e.records.len());
    if e.overhead >= 1.5 {
        eprintln!("FAIL: tracing overhead {:.2}x breaches the 1.5x ceiling", e.overhead);
        failures += 1;
    }
    let snap = telemetry::registry().snapshot();
    match snap.gauges.get("trace.overhead_x1000") {
        None => {
            eprintln!("FAIL: trace.overhead_x1000 gauge missing from the metrics snapshot");
            failures += 1;
        }
        Some(&v) if v >= 1_500 => {
            eprintln!("FAIL: trace.overhead_x1000 = {v} breaches the 1500 ceiling");
            failures += 1;
        }
        Some(_) => {}
    }

    if failures > 0 {
        eprintln!("trace-smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("trace-smoke: exports valid, span forest well-formed, lifecycle coverage 100%");
}
