//! Signature explorer: enumerate the good-enough sharding signatures of any
//! corpus contract (paper Defs. 5.1–5.3) and print the trade-offs a
//! deployer weighs offline.
//!
//! ```text
//! cargo run --release --example signature_explorer [ContractName]
//! ```

use cosplit::analysis::ge::{ge_stats, is_good_enough};
use cosplit::analysis::signature::{Constraint, WeakReads};
use cosplit::analysis::solver::AnalyzedContract;
use cosplit::scilla;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "NonfungibleToken".to_string());
    let Some(entry) = scilla::corpus::get(&name) else {
        eprintln!("unknown corpus contract '{name}'; try e.g. FungibleToken, UD_registry");
        std::process::exit(2);
    };
    let checked = scilla::typechecker::typecheck(
        scilla::parser::parse_module(entry.source).expect("corpus parses"),
    )
    .expect("corpus typechecks");
    let analyzed = AnalyzedContract::analyze(&checked);

    println!("contract {name}: {} transitions\n", analyzed.summaries.len());

    // Per-transition verdicts when sharded alone.
    println!("{:<24} {:>10}  constraints (alone)", "transition", "shardable");
    for t in analyzed.transition_names() {
        let sig = analyzed.query(std::slice::from_ref(&t), &WeakReads::AcceptAll);
        let tc = sig.transition(&t).expect("selected");
        let shardable = if tc.is_shardable() { "yes" } else { "no (DS)" };
        let constraints: Vec<String> = tc
            .constraints
            .iter()
            .filter(|c| !matches!(c, Constraint::NoAliases(..)))
            .map(|c| c.to_string())
            .collect();
        println!("{t:<24} {shardable:>10}  {}", constraints.join(", "));
    }

    // The GE statistics the paper reports in Fig. 13.
    let stats = ge_stats(&analyzed);
    println!("\nlargest good-enough signature: {} transitions", stats.largest);
    println!("  witness: {:?}", stats.largest_selection);
    println!("maximal good-enough signatures: {}", stats.maximal_count);
    println!("good-enough selections in total: {}", stats.ge_count);

    // Show why the witness is GE: no field hogged twice.
    let sig = analyzed.query(&stats.largest_selection, &WeakReads::AcceptAll);
    assert!(is_good_enough(&sig, &analyzed.field_names));
    println!("\nper-field joins for the witness selection:");
    for (f, j) in &sig.joins {
        println!("  {f} ⊎ {j:?}");
    }
}
