//! Quickstart: analyse an ERC20-style contract with CoSplit and inspect the
//! inferred sharding signature (the paper's running example, Fig. 5/8/9).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cosplit::analysis::signature::WeakReads;
use cosplit::analysis::solver::AnalyzedContract;
use cosplit::scilla;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fungible token in the Scilla subset (see `crates/scilla/corpus/`
    // for the full evaluation corpus).
    let source = scilla::corpus::get("FungibleToken").expect("corpus contract").source;

    // 1. The deployment pipeline a miner runs: parse + type-check.
    let module = scilla::parser::parse_module(source)?;
    let checked = scilla::typechecker::typecheck(module)?;

    // 2. The CoSplit effect analysis: one summary per transition (§3.2).
    let analyzed = AnalyzedContract::analyze(&checked);
    println!("== Effect summary for Transfer (compare with paper Fig. 8) ==\n");
    println!("{}", analyzed.summary("Transfer").expect("transition exists"));

    // 3. Offline mode (§4.3, Fig. 11): the developer selects transitions to
    // shard and accepts the required weak reads; the solver answers with a
    // sharding signature (oc, ⊎f).
    let selection: Vec<String> =
        ["Mint", "Transfer", "TransferFrom"].iter().map(|s| s.to_string()).collect();
    let signature = analyzed.query(&selection, &WeakReads::AcceptAll);

    println!("== Sharding signature ==\n");
    for t in &signature.transitions {
        println!("transition {}:", t.name);
        for c in &t.constraints {
            println!("  {c}");
        }
        if t.constraints.is_empty() {
            println!("  (no constraints: fully commutative footprint)");
        }
    }
    println!("\nper-field joins:");
    for (field, join) in &signature.joins {
        println!("  {field} ⊎ {join:?}");
    }
    println!("\nweak reads accepted: {:?}", signature.weak_reads);

    // 4. Online mode: miners validate a submitted signature by re-deriving.
    assert!(analyzed.validate(&signature), "honest signatures validate");
    println!("\nsignature validates (miners re-derive and compare) ✓");

    // 5. The JSON wire form exchanged with the blockchain nodes.
    println!("\nwire form ({} bytes of JSON)", signature.to_json().len());
    Ok(())
}
