//! Negative tests over the frontend: each rejected program pins down one
//! diagnostic the pipeline must produce (and keep producing).

use scilla::parser::{parse_expr, parse_module};
use scilla::typechecker::typecheck;

fn type_error(src: &str) -> String {
    typecheck(parse_module(src).expect("parses")).expect_err("must be ill-typed").message
}

fn parse_error(src: &str) -> String {
    parse_module(src).expect_err("must not parse").message
}

// ------------------------------------------------------------------ parser

#[test]
fn transition_requires_end() {
    let e = parse_error("contract C () transition T () accept");
    assert!(e.contains("end") || e.contains("unexpected"), "{e}");
}

#[test]
fn map_update_requires_identifier_rhs() {
    // ANF: the stored value must be a name, not an expression.
    let e = parse_error(
        "contract C () field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128\n\
         transition T (k : ByStr20)\n  m[k] := builtin add k k\nend",
    );
    assert!(!e.is_empty());
}

#[test]
fn statements_are_not_expressions() {
    assert!(parse_expr("accept").is_err());
    assert!(parse_expr("x <- f").is_err());
}

#[test]
fn message_entries_need_values() {
    let e = parse_error(
        "contract C () transition T ()\n  m = {_tag : }\nend",
    );
    assert!(!e.is_empty());
}

#[test]
fn library_types_need_constructors() {
    let e = parse_error("library L\ntype Empty =\ncontract C ()");
    assert!(e.contains("constructor"), "{e}");
}

// ------------------------------------------------------------- typechecker

#[test]
fn unknown_builtin_is_rejected() {
    let e = type_error(
        "contract C ()\ntransition T (x : Uint128)\n  y = builtin frobnicate x\nend",
    );
    assert!(e.contains("unknown builtin"), "{e}");
}

#[test]
fn map_depth_is_checked() {
    let e = type_error(
        "contract C ()\nfield m : Map ByStr20 Uint128 = Emp ByStr20 Uint128\n\
         transition T (a : ByStr20, b : ByStr20, v : Uint128)\n  m[a][b] := v\nend",
    );
    assert!(e.contains("indexed"), "{e}");
}

#[test]
fn send_of_non_message_rejected() {
    let e = type_error(
        "contract C ()\ntransition T (x : Uint128)\n  send x\nend",
    );
    assert!(e.contains("send expects"), "{e}");
}

#[test]
fn event_of_non_message_rejected() {
    let e = type_error(
        "contract C ()\ntransition T (x : Uint128)\n  event x\nend",
    );
    assert!(e.contains("event expects"), "{e}");
}

#[test]
fn application_of_non_function_rejected() {
    let e = type_error(
        "contract C ()\ntransition T (x : Uint128)\n  y = x x\nend",
    );
    assert!(e.contains("applied"), "{e}");
}

#[test]
fn over_application_rejected() {
    let e = type_error(
        "library L\nlet id = fun (x : Uint128) => x\n\
         contract C ()\ntransition T (a : Uint128, b : Uint128)\n  y = id a b\nend",
    );
    assert!(e.contains("too many arguments") || e.contains("applied"), "{e}");
}

#[test]
fn constructor_arity_is_checked() {
    let e = type_error(
        "contract C ()\ntransition T (a : Uint128, b : Uint128)\n  o = Some {Uint128} a b\nend",
    );
    assert!(e.contains("argument"), "{e}");
}

#[test]
fn pattern_against_wrong_adt_rejected() {
    let e = type_error(
        "contract C ()\ntransition T (o : Option Uint128)\n  match o with\n  | True => accept\n  | _ => accept\n  end\nend",
    );
    assert!(e.contains("belongs to"), "{e}");
}

#[test]
fn pattern_arity_is_checked() {
    let e = type_error(
        "contract C ()\ntransition T (o : Option Uint128)\n  match o with\n  | Some a b => accept\n  | _ => accept\n  end\nend",
    );
    assert!(e.contains("sub-pattern"), "{e}");
}

#[test]
fn duplicate_fields_rejected() {
    let e = type_error(
        "contract C ()\nfield n : Uint128 = Uint128 0\nfield n : Uint128 = Uint128 1",
    );
    assert!(e.contains("duplicate field"), "{e}");
}

#[test]
fn duplicate_transition_params_rejected() {
    let e = type_error("contract C ()\ntransition T (x : Uint128, x : Uint128)\nend");
    assert!(e.contains("duplicate binding"), "{e}");
}

#[test]
fn unstorable_field_types_rejected() {
    let e = type_error("contract C ()\nfield f : Uint128 -> Uint128 = Uint128 0");
    assert!(e.contains("unstorable"), "{e}");
}

#[test]
fn type_instantiation_of_monomorphic_value_rejected() {
    let e = type_error(
        "library L\nlet one = Uint128 1\n\
         contract C ()\ntransition T ()\n  y = @one Uint128\nend",
    );
    assert!(e.contains("instantiated"), "{e}");
}

#[test]
fn blockchain_query_names_are_checked() {
    let e = type_error("contract C ()\ntransition T ()\n  b <- & TIMESTAMP\nend");
    assert!(e.contains("unknown blockchain query"), "{e}");
}

#[test]
fn library_annotation_mismatch_rejected() {
    let e = type_error("library L\nlet x : String = Uint128 1\ncontract C ()");
    assert!(e.contains("annotated"), "{e}");
}
