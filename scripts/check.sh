#!/usr/bin/env bash
# Full offline verification: build, test, lint. The workspace has no
# registry dependencies (everything external lives in vendor/), so this
# runs without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
