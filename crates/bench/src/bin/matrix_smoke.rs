//! Conflict-matrix smoke test for CI (`scripts/check.sh`).
//!
//! Three checks, all fatal:
//!
//! 1. **Corpus sweep** — derives the pairwise commutativity matrix for every
//!    contract in the 49-contract mainnet sample without panicking, and
//!    asserts the matrix round-trips through its JSON wire form (the
//!    executor consumes the wire form, so a lossy encode would silently
//!    change scheduling).
//! 2. **FungibleToken `Transfer`/`Transfer`** — must *not* be a static
//!    conflict, and two transfers touching four distinct accounts must
//!    commute concretely: this is the pair the intra-shard parallel
//!    speedup lives on.
//! 3. **FungibleToken `Transfer`/`TransferFrom` on a shared owner** — a
//!    transfer out of Alice's balance and a delegated transfer whose `from`
//!    is Alice must conflict concretely (both debit `balances[alice]` behind
//!    a spendability condition), while the same pair on disjoint owners
//!    commutes.
//!
//! Usage: `matrix_smoke` (no arguments, fully deterministic).

use cosplit_analysis::conflict::{wire, ConflictMatrix};
use cosplit_analysis::solver::AnalyzedContract;
use scilla::corpus;
use scilla::value::Value;

fn main() {
    let mut failures = 0u32;
    failures += corpus_sweep();
    failures += fungible_token_pairs();
    if failures > 0 {
        eprintln!("matrix-smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("matrix-smoke: corpus matrices derived, FungibleToken pair verdicts hold");
}

/// Builds every corpus contract's matrix; returns the number of pipeline
/// failures. Panics inside `ConflictMatrix::build` abort the process, which
/// is exactly the signal this gate exists for.
fn corpus_sweep() -> u32 {
    let mut failures = 0u32;
    let mut contracts = 0usize;
    let mut pairs = 0usize;
    for entry in corpus::mainnet_sample() {
        let module = match scilla::parser::parse_module(entry.source) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("FAIL matrix {}: parse error: {e}", entry.name);
                failures += 1;
                continue;
            }
        };
        let checked = match scilla::typechecker::typecheck(module) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("FAIL matrix {}: type error: {e}", entry.name);
                failures += 1;
                continue;
            }
        };
        let analyzed = AnalyzedContract::analyze(&checked);
        let matrix = ConflictMatrix::build(&analyzed.name, &analyzed.summaries);
        let back = wire::matrix_from_value(&wire::matrix_to_value(&matrix));
        if back.as_ref() != Some(&matrix) {
            eprintln!("FAIL matrix {}: wire round-trip changed the matrix", entry.name);
            failures += 1;
        }
        contracts += 1;
        pairs += matrix.len() * matrix.len();
    }
    println!("matrix sweep: {contracts} contracts, {pairs} ordered pairs derived");
    failures
}

/// A concrete `Transfer`/`TransferFrom`-shaped binding: `_sender`/`_origin`
/// resolve to `sender`, everything else to the named parameters.
fn bind(
    sender: [u8; 20],
    params: Vec<(&'static str, [u8; 20])>,
) -> impl Fn(&str) -> Option<Value> {
    move |p: &str| match p {
        "_sender" | "_origin" => Some(Value::address(sender)),
        "amount" => Some(Value::Uint(128, 1)),
        other => params
            .iter()
            .find(|(name, _)| *name == other)
            .map(|(_, a)| Value::address(*a)),
    }
}

fn fungible_token_pairs() -> u32 {
    let entry = corpus::mainnet_sample()
        .into_iter()
        .find(|e| e.name == "FungibleToken")
        .expect("FungibleToken must be in the mainnet sample");
    let module = scilla::parser::parse_module(entry.source).expect("FungibleToken parses");
    let checked = scilla::typechecker::typecheck(module).expect("FungibleToken typechecks");
    let analyzed = AnalyzedContract::analyze(&checked);
    let matrix = ConflictMatrix::build(&analyzed.name, &analyzed.summaries);

    let addr = |i: u8| [i; 20];
    let mut failures = 0u32;
    let mut check = |label: &str, ok: bool| {
        if !ok {
            eprintln!("FAIL matrix FungibleToken: {label}");
            failures += 1;
        }
    };

    // Transfer/Transfer must not be a static conflict, and disjoint
    // accounts must commute concretely (Alice→Bob vs Carol→Dave).
    check(
        "Transfer/Transfer must not statically conflict",
        matrix.may_commute("Transfer", "Transfer"),
    );
    check(
        "disjoint Transfer/Transfer must commute concretely",
        !matrix.conflicts_concrete(
            "Transfer",
            &bind(addr(1), vec![("to", addr(2))]),
            "Transfer",
            &bind(addr(3), vec![("to", addr(4))]),
        ),
    );

    // Transfer out of Alice vs a delegated TransferFrom whose owner is
    // Alice both debit balances[alice]: concrete conflict. Moving the
    // delegated owner to Carol clears it.
    check(
        "Transfer/TransferFrom on a shared owner must conflict concretely",
        matrix.conflicts_concrete(
            "Transfer",
            &bind(addr(1), vec![("to", addr(2))]),
            "TransferFrom",
            &bind(addr(5), vec![("from", addr(1)), ("to", addr(6))]),
        ),
    );
    check(
        "Transfer/TransferFrom on disjoint owners must commute concretely",
        !matrix.conflicts_concrete(
            "Transfer",
            &bind(addr(1), vec![("to", addr(2))]),
            "TransferFrom",
            &bind(addr(5), vec![("from", addr(3)), ("to", addr(6))]),
        ),
    );

    failures
}
