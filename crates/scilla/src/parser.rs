//! Recursive-descent parser for the Scilla subset.
//!
//! The grammar follows paper Fig. 4. The language is kept in administrative
//! normal form: arguments of applications, builtins, and constructors are
//! identifiers, so the statement → effect translation in the analysis stays
//! direct.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{lex, Tok, Token};
use crate::span::Span;
use crate::types::Type;

/// Parses a full contract module (optional `library` section + `contract`).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
///
/// # Examples
///
/// ```
/// let src = r#"
///   contract Counter ()
///   field count : Uint128 = Uint128 0
///   transition Incr ()
///     one = Uint128 1;
///     c <- count;
///     c2 = builtin add c one;
///     count := c2
///   end
/// "#;
/// let module = scilla::parser::parse_module(src)?;
/// assert_eq!(module.contract.name.name, "Counter");
/// assert_eq!(module.contract.transitions.len(), 1);
/// # Ok::<(), scilla::error::ParseError>(())
/// ```
pub fn parse_module(src: &str) -> Result<ContractModule, ParseError> {
    let tokens = lex(src)?;
    Parser::new(tokens).module()
}

/// Parses a standalone expression (useful for tests and the REPL-style examples).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.tok)
    }

    fn span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.span)
            .unwrap_or_else(Span::dummy)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { span: self.span(), message: msg.into() }
    }

    fn expect(&mut self, tok: Tok) -> Result<Span, ParseError> {
        match self.peek() {
            Some(t) if *t == tok => Ok(self.bump().expect("peeked").span),
            Some(t) => Err(self.err(format!("expected '{tok}', found '{t}'"))),
            None => Err(self.err(format!("expected '{tok}', found end of input"))),
        }
    }

    fn accept(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err("unexpected trailing tokens"))
        }
    }

    /// Any identifier usable in value position: lower-case or special (`_sender`).
    fn value_ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek().cloned() {
            Some(Tok::LIdent(name)) | Some(Tok::SpecialIdent(name)) => {
                let span = self.bump().expect("peeked").span;
                Ok(Ident::spanned(name, span))
            }
            other => Err(self.err(format!(
                "expected identifier, found '{}'",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn cident(&mut self) -> Result<Ident, ParseError> {
        match self.peek().cloned() {
            Some(Tok::CIdent(name)) => {
                let span = self.bump().expect("peeked").span;
                Ok(Ident::spanned(name, span))
            }
            other => Err(self.err(format!(
                "expected capitalised identifier, found '{}'",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    // ---------------------------------------------------------------- types

    fn type_atom(&mut self) -> Result<Type, ParseError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.bump();
                let t = self.type_expr()?;
                self.expect(Tok::RParen)?;
                Ok(t)
            }
            Some(Tok::TypeVar(v)) => {
                self.bump();
                Ok(Type::TypeVar(v))
            }
            Some(Tok::CIdent(name)) => {
                self.bump();
                Ok(named_nullary_type(&name))
            }
            other => Err(self.err(format!(
                "expected type, found '{}'",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn type_app(&mut self) -> Result<Type, ParseError> {
        match self.peek().cloned() {
            Some(Tok::CIdent(name)) => {
                self.bump();
                if name == "Map" {
                    let k = self.type_atom()?;
                    let v = self.type_atom()?;
                    return Ok(Type::Map(Box::new(k), Box::new(v)));
                }
                let base = named_nullary_type(&name);
                // Only ADT heads take type arguments.
                if let Type::Adt(head, _) = &base {
                    let mut args = Vec::new();
                    while self.type_arg_starts() {
                        args.push(self.type_atom()?);
                    }
                    if !args.is_empty() {
                        return Ok(Type::Adt(head.clone(), args));
                    }
                }
                Ok(base)
            }
            _ => self.type_atom(),
        }
    }

    fn type_arg_starts(&self) -> bool {
        matches!(self.peek(), Some(Tok::CIdent(_)) | Some(Tok::LParen) | Some(Tok::TypeVar(_)))
    }

    fn type_expr(&mut self) -> Result<Type, ParseError> {
        let lhs = self.type_app()?;
        if self.accept(&Tok::ThinArrow) {
            let rhs = self.type_expr()?;
            Ok(Type::Fun(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    // ------------------------------------------------------------- patterns

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        match self.peek().cloned() {
            Some(Tok::CIdent(_)) => {
                let ctor = self.cident()?;
                let mut subs = Vec::new();
                while self.pattern_atom_starts() {
                    subs.push(self.pattern_atom()?);
                }
                Ok(Pattern::Constructor(ctor, subs))
            }
            _ => self.pattern_atom(),
        }
    }

    fn pattern_atom_starts(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::Underscore) | Some(Tok::LIdent(_)) | Some(Tok::CIdent(_)) | Some(Tok::LParen)
        )
    }

    fn pattern_atom(&mut self) -> Result<Pattern, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Underscore) => {
                let span = self.bump().expect("peeked").span;
                Ok(Pattern::Wildcard(span))
            }
            Some(Tok::LIdent(name)) => {
                let span = self.bump().expect("peeked").span;
                Ok(Pattern::Binder(Ident::spanned(name, span)))
            }
            Some(Tok::CIdent(_)) => {
                let c = self.cident()?;
                Ok(Pattern::Constructor(c, vec![]))
            }
            Some(Tok::LParen) => {
                self.bump();
                let p = self.pattern()?;
                self.expect(Tok::RParen)?;
                Ok(p)
            }
            other => Err(self.err(format!(
                "expected pattern, found '{}'",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Let) => {
                self.bump();
                let bound = self.value_ident()?;
                let ann = if self.accept(&Tok::Colon) { Some(self.type_expr()?) } else { None };
                self.expect(Tok::Eq)?;
                let rhs = self.expr()?;
                self.expect(Tok::In)?;
                let body = self.expr()?;
                Ok(Expr::Let { bound, ann, rhs: Box::new(rhs), body: Box::new(body) })
            }
            Some(Tok::Fun) => {
                self.bump();
                self.expect(Tok::LParen)?;
                let param = self.value_ident()?;
                self.expect(Tok::Colon)?;
                let param_type = self.type_expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::FatArrow)?;
                let body = self.expr()?;
                Ok(Expr::Fun { param, param_type, body: Box::new(body) })
            }
            Some(Tok::TFun) => {
                let span = self.span();
                self.bump();
                let tvar = match self.peek().cloned() {
                    Some(Tok::TypeVar(v)) => {
                        self.bump();
                        v
                    }
                    _ => return Err(self.err("expected type variable after 'tfun'")),
                };
                self.expect(Tok::FatArrow)?;
                let body = self.expr()?;
                Ok(Expr::TFun { tvar, body: Box::new(body), span })
            }
            Some(Tok::At) => {
                self.bump();
                let target = self.value_ident()?;
                let mut type_args = Vec::new();
                while self.type_arg_starts() {
                    type_args.push(self.type_atom()?);
                }
                if type_args.is_empty() {
                    return Err(self.err("expected at least one type argument after '@ident'"));
                }
                Ok(Expr::Inst { target, type_args })
            }
            Some(Tok::Builtin) => {
                self.bump();
                let op = self.value_ident()?;
                let mut args = Vec::new();
                while matches!(self.peek(), Some(Tok::LIdent(_)) | Some(Tok::SpecialIdent(_))) {
                    args.push(self.value_ident()?);
                }
                if args.is_empty() {
                    return Err(self.err("builtin application needs at least one argument"));
                }
                Ok(Expr::Builtin { op, args })
            }
            Some(Tok::Match) => {
                let span = self.span();
                self.bump();
                let scrutinee = self.value_ident()?;
                self.expect(Tok::With)?;
                let mut clauses = Vec::new();
                while self.accept(&Tok::Bar) {
                    let pat = self.pattern()?;
                    self.expect(Tok::FatArrow)?;
                    let body = self.expr()?;
                    clauses.push((pat, body));
                }
                self.expect(Tok::End)?;
                if clauses.is_empty() {
                    return Err(self.err("match expression needs at least one clause"));
                }
                Ok(Expr::Match { scrutinee, clauses, span })
            }
            Some(Tok::LBrace) => self.message_literal(),
            Some(Tok::Emp) => {
                let span = self.span();
                self.bump();
                let k = self.type_atom()?;
                let v = self.type_atom()?;
                Ok(Expr::Lit(Literal::EmpMap(k, v), span))
            }
            Some(Tok::StrLit(s)) => {
                let span = self.bump().expect("peeked").span;
                Ok(Expr::Lit(Literal::Str(s), span))
            }
            Some(Tok::HexLit(bs)) => {
                let span = self.bump().expect("peeked").span;
                Ok(Expr::Lit(Literal::ByStr(bs), span))
            }
            Some(Tok::CIdent(name)) => self.constr_or_literal(&name),
            Some(Tok::LIdent(_)) | Some(Tok::SpecialIdent(_)) => {
                let head = self.value_ident()?;
                let mut args = Vec::new();
                while matches!(self.peek(), Some(Tok::LIdent(_)) | Some(Tok::SpecialIdent(_))) {
                    args.push(self.value_ident()?);
                }
                if args.is_empty() {
                    Ok(Expr::Var(head))
                } else {
                    Ok(Expr::App { func: head, args })
                }
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!(
                "expected expression, found '{}'",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    /// `Uint128 10`, `BNum 4`, or a constructor application `Some {T} x`.
    fn constr_or_literal(&mut self, head: &str) -> Result<Expr, ParseError> {
        let span = self.span();
        if let Some(lit_width) = int_type_width(head) {
            if let Some(Tok::IntLit(_)) = self.peek2() {
                self.bump(); // type name
                let Some(Token { tok: Tok::IntLit(n), .. }) = self.bump() else { unreachable!() };
                let lit = if head.starts_with("Uint") {
                    if n < 0 {
                        return Err(self.err("unsigned literal cannot be negative"));
                    }
                    Literal::Uint(lit_width, n as u128)
                } else {
                    Literal::Int(lit_width, n)
                };
                return Ok(Expr::Lit(lit, span));
            }
        }
        if head == "BNum" {
            if let Some(Tok::IntLit(_)) = self.peek2() {
                self.bump();
                let Some(Token { tok: Tok::IntLit(n), .. }) = self.bump() else { unreachable!() };
                if n < 0 {
                    return Err(self.err("block number cannot be negative"));
                }
                return Ok(Expr::Lit(Literal::BNum(n as u64), span));
            }
        }
        let name = self.cident()?;
        let mut type_args = Vec::new();
        if self.accept(&Tok::LBrace) {
            while !self.accept(&Tok::RBrace) {
                type_args.push(self.type_atom()?);
            }
        }
        let mut args = Vec::new();
        while matches!(self.peek(), Some(Tok::LIdent(_)) | Some(Tok::SpecialIdent(_))) {
            args.push(self.value_ident()?);
        }
        Ok(Expr::Constr { name, type_args, args })
    }

    fn message_literal(&mut self) -> Result<Expr, ParseError> {
        let span = self.expect(Tok::LBrace)?;
        let mut entries = Vec::new();
        loop {
            let key = match self.peek().cloned() {
                Some(Tok::LIdent(k)) | Some(Tok::SpecialIdent(k)) => {
                    self.bump();
                    k
                }
                _ => return Err(self.err("expected message entry key")),
            };
            self.expect(Tok::Colon)?;
            let value = match self.peek().cloned() {
                Some(Tok::StrLit(s)) => {
                    self.bump();
                    MsgValue::Lit(Literal::Str(s))
                }
                Some(Tok::HexLit(bs)) => {
                    self.bump();
                    MsgValue::Lit(Literal::ByStr(bs))
                }
                Some(Tok::CIdent(name)) => {
                    if let Some(w) = int_type_width(&name) {
                        self.bump();
                        match self.bump() {
                            Some(Token { tok: Tok::IntLit(n), .. }) => {
                                if name.starts_with("Uint") {
                                    MsgValue::Lit(Literal::Uint(w, n as u128))
                                } else {
                                    MsgValue::Lit(Literal::Int(w, n))
                                }
                            }
                            _ => return Err(self.err("expected integer after type name")),
                        }
                    } else {
                        return Err(self.err("expected message entry value"));
                    }
                }
                Some(Tok::LIdent(_)) | Some(Tok::SpecialIdent(_)) => MsgValue::Var(self.value_ident()?),
                _ => return Err(self.err("expected message entry value")),
            };
            entries.push(MsgEntry { key, value });
            if !self.accept(&Tok::Semi) {
                break;
            }
        }
        let end = self.expect(Tok::RBrace)?;
        Ok(Expr::Message(entries, span.merge(end)))
    }

    // ----------------------------------------------------------- statements

    fn map_keys(&mut self) -> Result<Vec<Ident>, ParseError> {
        let mut keys = Vec::new();
        while self.accept(&Tok::LBracket) {
            keys.push(self.value_ident()?);
            self.expect(Tok::RBracket)?;
        }
        Ok(keys)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Accept) => {
                let span = self.bump().expect("peeked").span;
                Ok(Stmt::Accept(span))
            }
            Some(Tok::Send) => {
                self.bump();
                let msgs = self.value_ident()?;
                Ok(Stmt::Send { msgs })
            }
            Some(Tok::Event) => {
                self.bump();
                let event = self.value_ident()?;
                Ok(Stmt::Event { event })
            }
            Some(Tok::Throw) => {
                let span = self.bump().expect("peeked").span;
                let exception = if matches!(self.peek(), Some(Tok::LIdent(_))) {
                    Some(self.value_ident()?)
                } else {
                    None
                };
                Ok(Stmt::Throw { exception, span })
            }
            Some(Tok::Delete) => {
                self.bump();
                let map = self.value_ident()?;
                let keys = self.map_keys()?;
                if keys.is_empty() {
                    return Err(self.err("'delete' requires at least one map key"));
                }
                Ok(Stmt::MapDelete { map, keys })
            }
            Some(Tok::Match) => {
                let span = self.span();
                self.bump();
                let scrutinee = self.value_ident()?;
                self.expect(Tok::With)?;
                let mut clauses = Vec::new();
                while self.accept(&Tok::Bar) {
                    let pat = self.pattern()?;
                    self.expect(Tok::FatArrow)?;
                    let body = if matches!(self.peek(), Some(Tok::Bar) | Some(Tok::End)) {
                        Vec::new()
                    } else {
                        self.stmts()?
                    };
                    clauses.push((pat, body));
                }
                self.expect(Tok::End)?;
                if clauses.is_empty() {
                    return Err(self.err("match statement needs at least one clause"));
                }
                Ok(Stmt::Match { scrutinee, clauses, span })
            }
            Some(Tok::LIdent(_)) | Some(Tok::SpecialIdent(_)) => {
                let first = self.value_ident()?;
                match self.peek() {
                    Some(Tok::LeftArrow) => {
                        self.bump();
                        match self.peek().cloned() {
                            Some(Tok::Amp) => {
                                self.bump();
                                let query = self.cident()?;
                                Ok(Stmt::ReadBlockchain { lhs: first, query })
                            }
                            Some(Tok::Exists) => {
                                self.bump();
                                let map = self.value_ident()?;
                                let keys = self.map_keys()?;
                                if keys.is_empty() {
                                    return Err(self.err("'exists' requires at least one map key"));
                                }
                                Ok(Stmt::MapExists { lhs: first, map, keys })
                            }
                            Some(Tok::LIdent(_)) | Some(Tok::SpecialIdent(_)) => {
                                let source = self.value_ident()?;
                                let keys = self.map_keys()?;
                                if keys.is_empty() {
                                    Ok(Stmt::Load { lhs: first, field: source })
                                } else {
                                    Ok(Stmt::MapGet { lhs: first, map: source, keys })
                                }
                            }
                            _ => Err(self.err("expected field, map access, '&', or 'exists' after '<-'")),
                        }
                    }
                    Some(Tok::Assign) => {
                        self.bump();
                        let rhs = self.value_ident()?;
                        Ok(Stmt::Store { field: first, rhs })
                    }
                    Some(Tok::LBracket) => {
                        let keys = self.map_keys()?;
                        self.expect(Tok::Assign)?;
                        let rhs = self.value_ident()?;
                        Ok(Stmt::MapUpdate { map: first, keys, rhs })
                    }
                    Some(Tok::Eq) => {
                        self.bump();
                        let rhs = self.expr()?;
                        Ok(Stmt::Bind { lhs: first, rhs })
                    }
                    _ => Err(self.err("expected '<-', ':=', '[', or '=' after identifier")),
                }
            }
            other => Err(self.err(format!(
                "expected statement, found '{}'",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn stmts(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = vec![self.stmt()?];
        while self.accept(&Tok::Semi) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    // -------------------------------------------------------- declarations

    fn params(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.accept(&Tok::RParen) {
            return Ok(params);
        }
        loop {
            let name = self.value_ident()?;
            self.expect(Tok::Colon)?;
            let ty = self.type_expr()?;
            params.push(Param { name, ty });
            if !self.accept(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        Ok(params)
    }

    fn library_section(&mut self) -> Result<(Option<Ident>, Vec<LibEntry>), ParseError> {
        if !self.accept(&Tok::Library) {
            return Ok((None, Vec::new()));
        }
        let name = self.cident()?;
        let mut entries = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Let) => {
                    self.bump();
                    let name = self.value_ident()?;
                    let ann = if self.accept(&Tok::Colon) { Some(self.type_expr()?) } else { None };
                    self.expect(Tok::Eq)?;
                    let body = self.expr()?;
                    entries.push(LibEntry::Let { name, ann, body });
                }
                Some(Tok::Type) => {
                    self.bump();
                    let name = self.cident()?;
                    self.expect(Tok::Eq)?;
                    let mut ctors = Vec::new();
                    while self.accept(&Tok::Bar) {
                        let cname = self.cident()?;
                        let mut arg_types = Vec::new();
                        if self.accept(&Tok::Of) {
                            arg_types.push(self.type_atom()?);
                            while self.type_arg_starts() {
                                arg_types.push(self.type_atom()?);
                            }
                        }
                        ctors.push(CtorDef { name: cname, arg_types });
                    }
                    if ctors.is_empty() {
                        return Err(self.err("type declaration needs at least one constructor"));
                    }
                    entries.push(LibEntry::TypeDef { name, ctors });
                }
                _ => break,
            }
        }
        Ok((Some(name), entries))
    }

    fn module(&mut self) -> Result<ContractModule, ParseError> {
        let (library_name, library) = self.library_section()?;
        self.expect(Tok::Contract)?;
        let name = self.cident()?;
        let params = self.params()?;
        let mut fields = Vec::new();
        while self.accept(&Tok::Field) {
            let fname = self.value_ident()?;
            self.expect(Tok::Colon)?;
            let ty = self.type_expr()?;
            self.expect(Tok::Eq)?;
            let init = self.expr()?;
            fields.push(FieldDef { name: fname, ty, init });
        }
        let mut transitions = Vec::new();
        while self.accept(&Tok::Transition) {
            let tname = self.cident()?;
            let tparams = self.params()?;
            let body = if self.peek() == Some(&Tok::End) { Vec::new() } else { self.stmts()? };
            self.expect(Tok::End)?;
            transitions.push(Transition { name: tname, params: tparams, body });
        }
        self.expect_eof()?;
        Ok(ContractModule { library_name, library, contract: Contract { name, params, fields, transitions } })
    }
}

fn int_type_width(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("Uint").or_else(|| name.strip_prefix("Int"))?;
    match digits {
        "32" => Some(32),
        "64" => Some(64),
        "128" => Some(128),
        "256" => Some(256),
        _ => None,
    }
}

fn named_nullary_type(name: &str) -> Type {
    if let Some(w) = int_type_width(name) {
        return if name.starts_with("Uint") { Type::Uint(w) } else { Type::Int(w) };
    }
    if let Some(rest) = name.strip_prefix("ByStr") {
        if let Ok(w) = rest.parse::<u32>() {
            return Type::ByStr(w);
        }
    }
    match name {
        "String" => Type::Str,
        "BNum" => Type::BNum,
        "Message" => Type::Message,
        other => Type::Adt(other.to_string(), vec![]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_transfer_transition() {
        let src = r#"
            contract Token (owner : ByStr20)
            field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
            transition Transfer (to : ByStr20, amount : Uint128)
              bal_opt <- balances[_sender];
              match bal_opt with
              | Some bal =>
                new_bal = builtin sub bal amount;
                balances[_sender] := new_bal;
                to_bal_opt <- balances[to];
                new_to = match to_bal_opt with
                  | Some b => builtin add b amount
                  | None => amount
                  end;
                balances[to] := new_to
              | None => throw
              end
            end
        "#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.contract.name.name, "Token");
        assert_eq!(m.contract.fields.len(), 1);
        let t = m.contract.transition("Transfer").unwrap();
        assert_eq!(t.params.len(), 2);
        assert!(matches!(t.body[0], Stmt::MapGet { .. }));
        assert!(matches!(t.body[1], Stmt::Match { .. }));
    }

    #[test]
    fn parses_library_functions_and_adts() {
        let src = r#"
            library Lib
            let one = Uint128 1
            let incr = fun (x : Uint128) => builtin add x one
            type Order =
              | Buy of Uint128
              | Sell of Uint128 ByStr20
            contract C ()
        "#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.library_name.as_ref().unwrap().name, "Lib");
        assert_eq!(m.library.len(), 3);
        match &m.library[2] {
            LibEntry::TypeDef { name, ctors } => {
                assert_eq!(name.name, "Order");
                assert_eq!(ctors.len(), 2);
                assert_eq!(ctors[1].arg_types.len(), 2);
            }
            other => panic!("expected type def, got {other:?}"),
        }
    }

    #[test]
    fn parses_messages_and_send() {
        let src = r#"
            contract C ()
            transition Notify (to : ByStr20)
              zero = Uint128 0;
              msg = {_tag : "Accepted"; _recipient : to; _amount : zero; note : to};
              msgs = one_msg msg;
              send msgs
            end
        "#;
        let m = parse_module(src).unwrap();
        let t = &m.contract.transitions[0];
        match &t.body[1] {
            Stmt::Bind { rhs: Expr::Message(entries, _), .. } => {
                assert_eq!(entries.len(), 4);
                assert_eq!(entries[0].key, "_tag");
            }
            other => panic!("expected message bind, got {other:?}"),
        }
        assert!(matches!(t.body.last(), Some(Stmt::Send { .. })));
    }

    #[test]
    fn parses_nested_map_ops() {
        let src = r#"
            contract C ()
            field allowances : Map ByStr20 (Map ByStr20 Uint128) = Emp ByStr20 (Map ByStr20 Uint128)
            transition T (a : ByStr20, b : ByStr20, v : Uint128)
              allowances[a][b] := v;
              x <- allowances[a][b];
              ok <- exists allowances[a][b];
              delete allowances[a][b]
            end
        "#;
        let m = parse_module(src).unwrap();
        let body = &m.contract.transitions[0].body;
        assert!(matches!(&body[0], Stmt::MapUpdate { keys, .. } if keys.len() == 2));
        assert!(matches!(&body[1], Stmt::MapGet { keys, .. } if keys.len() == 2));
        assert!(matches!(&body[2], Stmt::MapExists { keys, .. } if keys.len() == 2));
        assert!(matches!(&body[3], Stmt::MapDelete { keys, .. } if keys.len() == 2));
    }

    #[test]
    fn parses_tfun_and_inst() {
        let e = parse_expr("tfun 'A => fun (x : 'A) => x").unwrap();
        assert!(matches!(e, Expr::TFun { .. }));
        let e = parse_expr("@id Uint128").unwrap();
        assert!(matches!(e, Expr::Inst { type_args, .. } if type_args.len() == 1));
    }

    #[test]
    fn parses_blockchain_read_and_accept() {
        let src = r#"
            contract C ()
            field deadline : BNum = BNum 100
            transition T ()
              accept;
              blk <- & BLOCKNUMBER;
              deadline := blk
            end
        "#;
        let m = parse_module(src).unwrap();
        let body = &m.contract.transitions[0].body;
        assert!(matches!(body[0], Stmt::Accept(_)));
        assert!(matches!(&body[1], Stmt::ReadBlockchain { query, .. } if query.name == "BLOCKNUMBER"));
    }

    #[test]
    fn rejects_compound_args() {
        // ANF: applications take identifiers only.
        assert!(parse_expr("f (g x)").is_err());
    }

    #[test]
    fn error_spans_point_to_problem() {
        let err = parse_module("contract c ()").unwrap_err();
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn empty_transition_body_allowed() {
        let m = parse_module("contract C () transition Nop () end").unwrap();
        assert!(m.contract.transitions[0].body.is_empty());
    }

    #[test]
    fn constructor_with_type_args() {
        let e = parse_expr("Some {Uint128} x").unwrap();
        match e {
            Expr::Constr { name, type_args, args } => {
                assert_eq!(name.name, "Some");
                assert_eq!(type_args, vec![Type::Uint(128)]);
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected constructor, got {other:?}"),
        }
    }
}
