//! State deltas and the three-way merge (paper §4.1, §4.3).
//!
//! Each shard's `MicroBlock` carries a `StateDelta` describing what its
//! transactions changed relative to the epoch-start state. The DS committee
//! merges all deltas into the final state:
//!
//! * components of fields with an [`Join::IntMerge`] join carry *numeric
//!   deltas* that sum across shards (Strategy 2, commutativity);
//! * everything else carries *overwrites* whose disjointness is guaranteed
//!   by ownership dispatch (Strategy 1) — the merge detects violations
//!   rather than silently losing writes.
//!
//! [`Join::IntMerge`]: cosplit_analysis::signature::Join::IntMerge

use crate::address::Address;
use crate::error::MergeError;
use crate::state::GlobalState;
use std::sync::Arc;
use scilla::builtins::uint_max;
use scilla::intern::Sym;
use scilla::state::{delete_at, descend, insert_at, StateStore};
use scilla::value::Value;
use serde_json::json;
use std::collections::BTreeMap;

/// One addressable state component: a field plus a (possibly empty) key path.
///
/// The field name is interned; component maps key and compare by intern id
/// (fast, in-process deterministic). Anything canonical — the wire encoding,
/// diagnostics — resolves the [`Sym`] back to text and orders by it.
pub type Component = (Sym, Vec<Value>);

/// Renders a component for diagnostics.
pub fn component_name(c: &Component) -> String {
    let mut s = c.0.as_str().to_string();
    for k in &c.1 {
        s.push_str(&format!("[{k}]"));
    }
    s
}

/// A numeric delta on an integer-valued component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntDelta {
    /// Signed change (final − initial).
    pub delta: i128,
    /// Bit width of the component's integer type.
    pub width: u32,
    /// Whether the component is a signed integer.
    pub signed: bool,
}

/// Changes to one contract's fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContractDelta {
    /// Components merged by summation.
    pub int_deltas: BTreeMap<Component, IntDelta>,
    /// Components merged by (disjoint) overwrite; `None` deletes the entry.
    pub overwrites: BTreeMap<Component, Option<Value>>,
}

impl ContractDelta {
    /// Is there nothing to apply?
    pub fn is_empty(&self) -> bool {
        self.int_deltas.is_empty() && self.overwrites.is_empty()
    }
}

/// Everything a shard changed during one epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateDelta {
    /// Per-contract field changes.
    pub contracts: BTreeMap<Address, ContractDelta>,
    /// Net native-balance changes (always mergeable: gas burns and transfers
    /// are commutative deltas).
    pub balances: BTreeMap<Address, i128>,
    /// Nonces committed per account (paper §4.2.1).
    pub nonces: BTreeMap<Address, Vec<u64>>,
}

impl StateDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is there nothing to apply?
    pub fn is_empty(&self) -> bool {
        self.contracts.values().all(ContractDelta::is_empty)
            && self.balances.is_empty()
            && self.nonces.is_empty()
    }

    /// Merges several shard deltas into one (the `FinalStateDelta`),
    /// checking disjointness of overwrites.
    ///
    /// # Errors
    ///
    /// [`MergeError::OverwriteConflict`] if two deltas overwrite the same
    /// component — impossible under correct ownership dispatch.
    pub fn merge(deltas: impl IntoIterator<Item = StateDelta>) -> Result<StateDelta, MergeError> {
        // Component values are Arc-shared, so merging from references is as
        // cheap as merging by move; keep the by-value form for callers that
        // own their deltas.
        let owned: Vec<StateDelta> = deltas.into_iter().collect();
        Self::merge_ref(owned.iter())
    }

    /// [`StateDelta::merge`] over borrowed deltas — the DS committee merges
    /// micro-block deltas in place without cloning each one first.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StateDelta::merge`].
    pub fn merge_ref<'a>(
        deltas: impl IntoIterator<Item = &'a StateDelta>,
    ) -> Result<StateDelta, MergeError> {
        let mut out = StateDelta::new();
        for d in deltas {
            for (addr, cd) in &d.contracts {
                let target = out.contracts.entry(*addr).or_default();
                for (comp, id) in &cd.int_deltas {
                    let entry = target.int_deltas.entry(comp.clone()).or_insert(IntDelta {
                        delta: 0,
                        width: id.width,
                        signed: id.signed,
                    });
                    entry.delta = entry.delta.checked_add(id.delta).ok_or_else(|| {
                        MergeError::DeltaOutOfRange {
                            contract: addr.to_string(),
                            component: "delta accumulator".into(),
                        }
                    })?;
                }
                for (comp, ow) in &cd.overwrites {
                    if target.overwrites.insert(comp.clone(), ow.clone()).is_some() {
                        return Err(MergeError::OverwriteConflict {
                            contract: addr.to_string(),
                            component: component_name(comp),
                        });
                    }
                }
            }
            for (addr, b) in &d.balances {
                *out.balances.entry(*addr).or_insert(0) += b;
            }
            for (addr, ns) in &d.nonces {
                out.nonces.entry(*addr).or_default().extend(ns.iter().copied());
            }
        }
        // Canonical multiset representation: merging is commutative and
        // associative only if the committed-nonce list is order-free.
        for ns in out.nonces.values_mut() {
            ns.sort_unstable();
        }
        Ok(out)
    }

    /// Sequential composition: one delta with the same net effect as
    /// applying the inputs **in order**.
    ///
    /// Where [`StateDelta::merge_ref`] combines *concurrent* contributions —
    /// and therefore must reject two overwrites of the same component — the
    /// inputs here are *ordered* (a per-transaction commit log whose
    /// conflicting entries were sequenced by the dependency scheduler), so
    /// collisions compose instead of erroring: a later overwrite supersedes
    /// anything earlier, an integer delta over an earlier overwrite folds
    /// into that overwrite's value (the delta was computed against exactly
    /// it), and integer deltas accumulate. The work-stealing executor uses
    /// this to drain a batch of peer commits in one application instead of
    /// one pass per transaction.
    #[must_use]
    pub fn compose_ref<'a>(deltas: impl IntoIterator<Item = &'a StateDelta>) -> StateDelta {
        let mut out = StateDelta::new();
        for d in deltas {
            for (addr, cd) in &d.contracts {
                let target = out.contracts.entry(*addr).or_default();
                for (comp, id) in &cd.int_deltas {
                    if let Some(ow) = target.overwrites.get_mut(comp) {
                        let folded = apply_int_delta(ow.as_ref(), id)
                            .expect("int delta composes over the overwrite it was computed against");
                        *ow = Some(folded);
                    } else {
                        let entry = target.int_deltas.entry(comp.clone()).or_insert(IntDelta {
                            delta: 0,
                            width: id.width,
                            signed: id.signed,
                        });
                        entry.delta = entry
                            .delta
                            .checked_add(id.delta)
                            .expect("composed int deltas stay in range");
                        entry.width = id.width;
                        entry.signed = id.signed;
                    }
                }
                for (comp, ow) in &cd.overwrites {
                    target.int_deltas.remove(comp);
                    target.overwrites.insert(comp.clone(), ow.clone());
                }
            }
            for (addr, b) in &d.balances {
                *out.balances.entry(*addr).or_insert(0) += b;
            }
            for (addr, ns) in &d.nonces {
                out.nonces.entry(*addr).or_default().extend(ns.iter().copied());
            }
        }
        out
    }

    /// Applies the delta to the global state (the DS committee's three-way
    /// merge of epoch-start state with the combined deltas).
    ///
    /// # Errors
    ///
    /// [`MergeError::DeltaOutOfRange`] if an integer component leaves its
    /// type's range — the situation the paper's §6 overflow guard prevents.
    pub fn apply(&self, state: &mut GlobalState) -> Result<(), MergeError> {
        for (addr, cd) in &self.contracts {
            // In the normal epoch flow the shard executors' snapshot views
            // have been dropped by merge time, so `make_mut` mutates in
            // place; a surviving snapshot (e.g. a held block digest input)
            // triggers one shallow O(fields) copy, never a value deep-copy.
            let storage = Arc::make_mut(state.storage.entry(*addr).or_default());
            for (comp, ow) in &cd.overwrites {
                let (field, keys) = comp;
                match ow {
                    Some(v) => {
                        if keys.is_empty() {
                            storage.store_sym(*field, v.clone());
                        } else {
                            storage.map_update_sym(*field, keys, v.clone());
                        }
                    }
                    None => storage.map_delete_sym(*field, keys),
                }
            }
            for (comp, id) in &cd.int_deltas {
                let (field, keys) = comp;
                let err = || MergeError::DeltaOutOfRange {
                    contract: addr.to_string(),
                    component: component_name(comp),
                };
                let old = storage.map_get_sym(*field, keys);
                let nv = apply_int_delta(old.as_ref(), id).ok_or_else(err)?;
                if keys.is_empty() {
                    storage.store_sym(*field, nv);
                } else {
                    storage.map_update_sym(*field, keys, nv);
                }
            }
        }
        for (addr, b) in &self.balances {
            let acc = state.accounts.entry(*addr).or_default();
            let new = (acc.balance as i128).saturating_add(*b);
            acc.balance = new.max(0) as u128;
        }
        for (addr, ns) in &self.nonces {
            let acc = state.accounts.entry(*addr).or_default();
            acc.nonces.merge(ns);
        }
        Ok(())
    }

    /// Serialises the delta through the JSON wire format (the boundary whose
    /// cost the paper measures in §5.2.2).
    pub fn to_wire(&self) -> String {
        let contracts: Vec<serde_json::Value> = self
            .contracts
            .iter()
            .map(|(addr, cd)| {
                // Component maps iterate in intern-id order, which varies
                // with process history; the wire form is canonical, so sort
                // by field text (then keys) before emitting.
                let canonical = |comps: Vec<(&Component, serde_json::Value)>| {
                    let mut comps = comps;
                    comps.sort_by(|(a, _), (b, _)| {
                        a.0.cmp_str(b.0).then_with(|| a.1.cmp(&b.1))
                    });
                    comps.into_iter().map(|(_, j)| j).collect::<Vec<_>>()
                };
                let ints = canonical(
                    cd.int_deltas
                        .iter()
                        .map(|(c, d)| {
                            (c, json!({
                                "field": c.0.as_str(),
                                "keys": c.1.iter().map(scilla::wire::to_json).collect::<Vec<_>>(),
                                "delta": d.delta.to_string(),
                                "width": d.width,
                                "signed": d.signed,
                            }))
                        })
                        .collect(),
                );
                let ows = canonical(
                    cd.overwrites
                        .iter()
                        .map(|(c, v)| {
                            (c, json!({
                                "field": c.0.as_str(),
                                "keys": c.1.iter().map(scilla::wire::to_json).collect::<Vec<_>>(),
                                "value": v.as_ref().map(scilla::wire::to_json),
                            }))
                        })
                        .collect(),
                );
                json!({"contract": addr.to_string(), "ints": ints, "overwrites": ows})
            })
            .collect();
        let balances: Vec<serde_json::Value> = self
            .balances
            .iter()
            .map(|(a, b)| json!({"account": a.to_string(), "delta": b.to_string()}))
            .collect();
        json!({"contracts": contracts, "balances": balances}).to_string()
    }

    /// Parses the JSON wire format produced by [`StateDelta::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed node.
    pub fn from_wire(wire: &str) -> Result<StateDelta, String> {
        let root: serde_json::Value = serde_json::from_str(wire).map_err(|e| e.to_string())?;
        let mut out = StateDelta::new();
        let parse_addr = Address::from_hex;
        let parse_keys = |j: &serde_json::Value| -> Result<Vec<Value>, String> {
            j.as_array()
                .ok_or("keys must be an array")?
                .iter()
                .map(scilla::wire::from_json)
                .collect()
        };
        for c in root["contracts"].as_array().ok_or("missing contracts")? {
            let addr = parse_addr(c["contract"].as_str().ok_or("missing contract address")?)?;
            let cd = out.contracts.entry(addr).or_default();
            for i in c["ints"].as_array().ok_or("missing ints")? {
                let field = scilla::intern::intern(i["field"].as_str().ok_or("missing field")?);
                let keys = parse_keys(&i["keys"])?;
                let delta: i128 =
                    i["delta"].as_str().ok_or("missing delta")?.parse().map_err(|_| "bad delta")?;
                let width = i["width"].as_u64().ok_or("missing width")? as u32;
                let signed = i["signed"].as_bool().ok_or("missing signed")?;
                cd.int_deltas.insert((field, keys), IntDelta { delta, width, signed });
            }
            for o in c["overwrites"].as_array().ok_or("missing overwrites")? {
                let field = scilla::intern::intern(o["field"].as_str().ok_or("missing field")?);
                let keys = parse_keys(&o["keys"])?;
                let value = match &o["value"] {
                    serde_json::Value::Null => None,
                    v => Some(scilla::wire::from_json(v)?),
                };
                cd.overwrites.insert((field, keys), value);
            }
        }
        for b in root["balances"].as_array().ok_or("missing balances")? {
            let addr = parse_addr(b["account"].as_str().ok_or("missing account")?)?;
            let delta: i128 =
                b["delta"].as_str().ok_or("missing delta")?.parse().map_err(|_| "bad delta")?;
            out.balances.insert(addr, delta);
        }
        Ok(out)
    }

    /// The number of changed state components (the unit of the paper's
    /// "per changed state field" merge cost).
    pub fn changed_components(&self) -> usize {
        self.contracts
            .values()
            .map(|cd| cd.int_deltas.len() + cd.overwrites.len())
            .sum::<usize>()
            + self.balances.len()
    }
}

/// Extracts the integer payload of a `Uint`/`Int` value. Unsigned values
/// above `i128::MAX` have no signed representation and yield `None`; use
/// [`compute_int_delta`] / [`apply_int_delta`], which work in the value's
/// own domain, rather than converting.
pub fn int_value(v: &Value) -> Option<i128> {
    match v {
        Value::Uint(_, n) => i128::try_from(*n).ok(),
        Value::Int(_, n) => Some(*n),
        _ => None,
    }
}

/// Computes the signed delta between two integer values of the same shape
/// (the initial value may be absent, meaning 0). `None` when the values are
/// not integers of a common shape or the delta exceeds `i128` (e.g. a fresh
/// write of nearly `u128::MAX` — such writes fall back to overwrites).
pub fn compute_int_delta(initial: Option<&Value>, now: &Value) -> Option<IntDelta> {
    match now {
        Value::Uint(w, n) => {
            let old: u128 = match initial {
                Some(Value::Uint(w2, o)) if w2 == w => *o,
                None => 0,
                _ => return None,
            };
            let delta = if *n >= old {
                i128::try_from(*n - old).ok()?
            } else {
                i128::try_from(old - *n).ok()?.checked_neg()?
            };
            Some(IntDelta { delta, width: *w, signed: false })
        }
        Value::Int(w, n) => {
            let old: i128 = match initial {
                Some(Value::Int(w2, o)) if w2 == w => *o,
                None => 0,
                _ => return None,
            };
            Some(IntDelta { delta: n.checked_sub(old)?, width: *w, signed: true })
        }
        _ => None,
    }
}

/// Applies a signed delta to an integer value (absent = 0), range-checked
/// against the component's declared width. Arithmetic happens in the
/// value's own domain, so `u128` values beyond `i128::MAX` are exact.
pub fn apply_int_delta(old: Option<&Value>, id: &IntDelta) -> Option<Value> {
    if id.signed {
        let old_i: i128 = match old {
            Some(Value::Int(_, n)) => *n,
            None => 0,
            _ => return None,
        };
        let new = old_i.checked_add(id.delta)?;
        let (min, max) = match id.width {
            32 => (i32::MIN as i128, i32::MAX as i128),
            64 => (i64::MIN as i128, i64::MAX as i128),
            _ => (i128::MIN, i128::MAX),
        };
        (new >= min && new <= max).then_some(Value::Int(id.width, new))
    } else {
        let old_u: u128 = match old {
            Some(Value::Uint(_, n)) => *n,
            None => 0,
            _ => return None,
        };
        let new = if id.delta >= 0 {
            old_u.checked_add(id.delta as u128)?
        } else {
            old_u.checked_sub(id.delta.unsigned_abs())?
        };
        (new <= uint_max(id.width)).then_some(Value::Uint(id.width, new))
    }
}

/// Convenience: read a component's current value from storage.
pub fn read_component(storage: &dyn StateStore, comp: &Component) -> Option<Value> {
    if comp.1.is_empty() {
        storage.load_sym(comp.0)
    } else {
        storage.map_get_sym(comp.0, &comp.1)
    }
}

/// Convenience: navigate within a single field `Value`.
pub fn value_at<'v>(root: &'v Value, keys: &[Value]) -> Option<&'v Value> {
    descend(root, keys)
}

/// Convenience: write within a single field `Value`.
pub fn write_at(root: &mut Value, keys: &[Value], v: Value) {
    insert_at(root, keys, v)
}

/// Convenience: delete within a single field `Value`.
pub fn remove_at(root: &mut Value, keys: &[Value]) {
    delete_at(root, keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn key(i: u64) -> Value {
        addr(i).to_value()
    }

    fn int_delta(d: i128) -> IntDelta {
        IntDelta { delta: d, width: 128, signed: false }
    }

    #[test]
    fn int_deltas_sum_across_shards() {
        let c = addr(100);
        let mk = |d: i128| {
            let mut sd = StateDelta::new();
            sd.contracts.entry(c).or_default().int_deltas.insert(
                ("balances".into(), vec![key(1)]),
                int_delta(d),
            );
            sd
        };
        let merged = StateDelta::merge([mk(10), mk(-3), mk(5)]).unwrap();
        assert_eq!(
            merged.contracts[&c].int_deltas[&("balances".into(), vec![key(1)])].delta,
            12
        );
    }

    #[test]
    fn overwrite_conflicts_are_detected() {
        let c = addr(100);
        let mk = |v: u128| {
            let mut sd = StateDelta::new();
            sd.contracts
                .entry(c)
                .or_default()
                .overwrites
                .insert(("owners".into(), vec![key(1)]), Some(Value::Uint(128, v)));
            sd
        };
        let err = StateDelta::merge([mk(1), mk(2)]).unwrap_err();
        assert!(matches!(err, MergeError::OverwriteConflict { .. }));
    }

    #[test]
    fn merge_is_order_independent() {
        let c = addr(100);
        let mut d1 = StateDelta::new();
        d1.contracts.entry(c).or_default().int_deltas.insert(("x".into(), vec![]), int_delta(4));
        d1.balances.insert(addr(1), -7);
        let mut d2 = StateDelta::new();
        d2.contracts.entry(c).or_default().int_deltas.insert(("x".into(), vec![]), int_delta(-1));
        d2.contracts
            .entry(c)
            .or_default()
            .overwrites
            .insert(("y".into(), vec![key(2)]), None);
        d2.balances.insert(addr(1), 3);

        let ab = StateDelta::merge([d1.clone(), d2.clone()]).unwrap();
        let ba = StateDelta::merge([d2, d1]).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn compose_sequences_overwrites_instead_of_erroring() {
        let c = addr(100);
        let comp: Component = ("owners".into(), vec![key(1)]);
        let mk = |v: u128| {
            let mut sd = StateDelta::new();
            sd.contracts
                .entry(c)
                .or_default()
                .overwrites
                .insert(comp.clone(), Some(Value::Uint(128, v)));
            sd
        };
        // merge rejects the collision; compose takes the later write.
        assert!(StateDelta::merge([mk(1), mk(2)]).is_err());
        let composed = StateDelta::compose_ref([&mk(1), &mk(2)]);
        assert_eq!(composed.contracts[&c].overwrites[&comp], Some(Value::Uint(128, 2)));
    }

    #[test]
    fn compose_folds_int_delta_into_prior_overwrite() {
        let c = addr(100);
        let comp: Component = ("total".into(), vec![]);
        let mut d1 = StateDelta::new();
        d1.contracts
            .entry(c)
            .or_default()
            .overwrites
            .insert(comp.clone(), Some(Value::Uint(128, 40)));
        let mut d2 = StateDelta::new();
        d2.contracts.entry(c).or_default().int_deltas.insert(comp.clone(), int_delta(5));

        let composed = StateDelta::compose_ref([&d1, &d2]);
        // The +5 was computed against the overwritten 40; the composite is a
        // single overwrite of 45 with no residual int delta.
        assert_eq!(composed.contracts[&c].overwrites[&comp], Some(Value::Uint(128, 45)));
        assert!(!composed.contracts[&c].int_deltas.contains_key(&comp));
    }

    #[test]
    fn compose_accumulates_int_deltas_and_balances() {
        let c = addr(100);
        let comp: Component = ("counters".into(), vec![key(3)]);
        let mk = |d: i128, b: i128| {
            let mut sd = StateDelta::new();
            sd.contracts.entry(c).or_default().int_deltas.insert(comp.clone(), int_delta(d));
            sd.balances.insert(addr(1), b);
            sd
        };
        let composed = StateDelta::compose_ref([&mk(10, -7), &mk(-3, 3)]);
        assert_eq!(composed.contracts[&c].int_deltas[&comp].delta, 7);
        assert_eq!(composed.balances[&addr(1)], -4);
    }

    #[test]
    fn compose_matches_sequential_apply() {
        let c = addr(100);
        let mut state = GlobalState::new();
        let storage = Arc::make_mut(state.storage.entry(c).or_default());
        storage.map_update("balances", &[key(1)], Value::Uint(128, 100));
        storage.store("owner", Value::Uint(128, 1));

        let mut d1 = StateDelta::new();
        {
            let cd = d1.contracts.entry(c).or_default();
            cd.int_deltas.insert(("balances".into(), vec![key(1)]), int_delta(20));
            cd.overwrites.insert(("owner".into(), vec![]), Some(Value::Uint(128, 2)));
        }
        let mut d2 = StateDelta::new();
        {
            let cd = d2.contracts.entry(c).or_default();
            cd.int_deltas.insert(("balances".into(), vec![key(1)]), int_delta(-5));
            cd.overwrites.insert(("owner".into(), vec![]), Some(Value::Uint(128, 3)));
        }

        let mut seq = state.clone();
        d1.apply(&mut seq).unwrap();
        d2.apply(&mut seq).unwrap();
        let mut batched = state;
        StateDelta::compose_ref([&d1, &d2]).apply(&mut batched).unwrap();

        let read = |st: &GlobalState, field: &str, keys: &[Value]| {
            read_component(st.storage[&c].as_ref(), &(field.into(), keys.to_vec()))
        };
        assert_eq!(read(&seq, "balances", &[key(1)]), read(&batched, "balances", &[key(1)]));
        assert_eq!(read(&seq, "owner", &[]), read(&batched, "owner", &[]));
        assert_eq!(read(&batched, "owner", &[]), Some(Value::Uint(128, 3)));
        assert_eq!(read(&batched, "balances", &[key(1)]), Some(Value::Uint(128, 115)));
    }

    #[test]
    fn apply_adds_deltas_to_base_values() {
        let c = addr(100);
        let mut state = GlobalState::new();
        let storage = Arc::make_mut(state.storage.entry(c).or_default());
        storage.map_update("balances", &[key(1)], Value::Uint(128, 100));

        let mut sd = StateDelta::new();
        sd.contracts
            .entry(c)
            .or_default()
            .int_deltas
            .insert(("balances".into(), vec![key(1)]), int_delta(-30));
        sd.contracts
            .entry(c)
            .or_default()
            .int_deltas
            .insert(("balances".into(), vec![key(2)]), int_delta(30));
        sd.apply(&mut state).unwrap();

        let storage = &state.storage[&c];
        assert_eq!(storage.map_get("balances", &[key(1)]), Some(Value::Uint(128, 70)));
        assert_eq!(storage.map_get("balances", &[key(2)]), Some(Value::Uint(128, 30)));
    }

    #[test]
    fn apply_rejects_underflow() {
        let c = addr(100);
        let mut state = GlobalState::new();
        state.storage.entry(c).or_default();
        let mut sd = StateDelta::new();
        sd.contracts
            .entry(c)
            .or_default()
            .int_deltas
            .insert(("balances".into(), vec![key(1)]), int_delta(-5));
        assert!(matches!(sd.apply(&mut state), Err(MergeError::DeltaOutOfRange { .. })));
    }

    #[test]
    fn apply_rejects_width_overflow() {
        let c = addr(100);
        let mut state = GlobalState::new();
        let storage = Arc::make_mut(state.storage.entry(c).or_default());
        storage.store("counter", Value::Uint(32, u32::MAX as u128 - 1));
        let mut sd = StateDelta::new();
        sd.contracts.entry(c).or_default().int_deltas.insert(
            ("counter".into(), vec![]),
            IntDelta { delta: 5, width: 32, signed: false },
        );
        assert!(matches!(sd.apply(&mut state), Err(MergeError::DeltaOutOfRange { .. })));
    }

    #[test]
    fn balances_and_nonces_merge() {
        let mut d1 = StateDelta::new();
        d1.balances.insert(addr(1), -10);
        d1.nonces.insert(addr(1), vec![1, 3]);
        let mut d2 = StateDelta::new();
        d2.balances.insert(addr(1), 4);
        d2.nonces.insert(addr(1), vec![2]);
        let merged = StateDelta::merge([d1, d2]).unwrap();
        let mut state = GlobalState::new();
        state.credit(addr(1), 100);
        merged.apply(&mut state).unwrap();
        assert_eq!(state.balance(&addr(1)), 94);
        assert_eq!(state.accounts[&addr(1)].nonces.high(), 3);
    }

    #[test]
    fn wire_roundtrips_modulo_nonces() {
        let c = addr(100);
        let mut sd = StateDelta::new();
        sd.contracts
            .entry(c)
            .or_default()
            .int_deltas
            .insert(("balances".into(), vec![key(1)]), int_delta(-42));
        sd.contracts
            .entry(c)
            .or_default()
            .overwrites
            .insert(("owners".into(), vec![key(2)]), Some(Value::Str("x".into())));
        sd.contracts
            .entry(c)
            .or_default()
            .overwrites
            .insert(("owners".into(), vec![key(3)]), None);
        sd.balances.insert(addr(1), -3);
        let back = StateDelta::from_wire(&sd.to_wire()).unwrap();
        // Nonce commits are carried in MicroBlock headers, not the wire
        // delta; everything else must roundtrip exactly.
        assert_eq!(back.contracts, sd.contracts);
        assert_eq!(back.balances, sd.balances);
    }

    #[test]
    fn malformed_wire_is_rejected() {
        assert!(StateDelta::from_wire("not json").is_err());
        assert!(StateDelta::from_wire("{}").is_err());
        assert!(StateDelta::from_wire(r#"{"contracts": [{"contract": "bogus"}], "balances": []}"#)
            .is_err());
    }

    #[test]
    fn wire_encoding_is_valid_json() {
        let c = addr(100);
        let mut sd = StateDelta::new();
        sd.contracts
            .entry(c)
            .or_default()
            .int_deltas
            .insert(("balances".into(), vec![key(1)]), int_delta(5));
        sd.contracts
            .entry(c)
            .or_default()
            .overwrites
            .insert(("owners".into(), vec![key(2)]), Some(Value::Str("x".into())));
        sd.balances.insert(addr(1), -3);
        let wire = sd.to_wire();
        let parsed: serde_json::Value = serde_json::from_str(&wire).unwrap();
        assert!(parsed["contracts"].is_array());
        assert_eq!(sd.changed_components(), 3);
    }
}
