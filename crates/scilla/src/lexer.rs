//! Hand-written lexer for the Scilla subset.

use crate::error::LexError;
use crate::span::Span;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Lower-case-initial identifier (variables, fields, builtins).
    LIdent(String),
    /// Upper-case-initial identifier (constructors, types, transitions).
    CIdent(String),
    /// Identifier starting with `_` (`_sender`, `_amount`, message keys).
    SpecialIdent(String),
    /// Decimal integer literal (sign handled by the parser via typed literals).
    IntLit(i128),
    /// String literal (unescaped contents).
    StrLit(String),
    /// Hex byte-string literal `0x…`.
    HexLit(Vec<u8>),
    /// A type variable `'A`.
    TypeVar(String),
    // Keywords.
    Contract,
    Library,
    Transition,
    Procedure,
    Field,
    Fun,
    TFun,
    Let,
    In,
    Match,
    With,
    End,
    Builtin,
    Accept,
    Send,
    Event,
    Throw,
    Delete,
    Exists,
    Type,
    Of,
    Emp,
    // Punctuation.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Colon,
    Assign,    // :=
    LeftArrow, // <-
    FatArrow,  // =>
    ThinArrow, // ->
    Eq,        // =
    Comma,
    Bar,
    Amp,
    At,
    Underscore,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::LIdent(s) | Tok::CIdent(s) | Tok::SpecialIdent(s) => write!(f, "{s}"),
            Tok::IntLit(n) => write!(f, "{n}"),
            Tok::StrLit(s) => write!(f, "{s:?}"),
            Tok::HexLit(bs) => {
                write!(f, "0x")?;
                for b in bs {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
            Tok::TypeVar(v) => write!(f, "'{v}"),
            Tok::Contract => write!(f, "contract"),
            Tok::Library => write!(f, "library"),
            Tok::Transition => write!(f, "transition"),
            Tok::Procedure => write!(f, "procedure"),
            Tok::Field => write!(f, "field"),
            Tok::Fun => write!(f, "fun"),
            Tok::TFun => write!(f, "tfun"),
            Tok::Let => write!(f, "let"),
            Tok::In => write!(f, "in"),
            Tok::Match => write!(f, "match"),
            Tok::With => write!(f, "with"),
            Tok::End => write!(f, "end"),
            Tok::Builtin => write!(f, "builtin"),
            Tok::Accept => write!(f, "accept"),
            Tok::Send => write!(f, "send"),
            Tok::Event => write!(f, "event"),
            Tok::Throw => write!(f, "throw"),
            Tok::Delete => write!(f, "delete"),
            Tok::Exists => write!(f, "exists"),
            Tok::Type => write!(f, "type"),
            Tok::Of => write!(f, "of"),
            Tok::Emp => write!(f, "Emp"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Semi => write!(f, ";"),
            Tok::Colon => write!(f, ":"),
            Tok::Assign => write!(f, ":="),
            Tok::LeftArrow => write!(f, "<-"),
            Tok::FatArrow => write!(f, "=>"),
            Tok::ThinArrow => write!(f, "->"),
            Tok::Eq => write!(f, "="),
            Tok::Comma => write!(f, ","),
            Tok::Bar => write!(f, "|"),
            Tok::Amp => write!(f, "&"),
            Tok::At => write!(f, "@"),
            Tok::Underscore => write!(f, "_"),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// Where it occurred.
    pub span: Span,
}

/// Tokenises `src` completely.
///
/// Comments are `(* … *)` (nesting allowed, as in OCaml/Scilla).
///
/// # Errors
///
/// Returns a [`LexError`] on an unterminated string/comment, a malformed hex
/// literal, or an unexpected character.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn err(&self, start: (usize, u32, u32), msg: impl Into<String>) -> LexError {
        LexError { span: Span::new(start.0, self.pos, start.1, start.2), message: msg.into() }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.here();
            let Some(b) = self.peek() else { break };
            let tok = match b {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'[' => {
                    self.bump();
                    Tok::LBracket
                }
                b']' => {
                    self.bump();
                    Tok::RBracket
                }
                b'{' => {
                    self.bump();
                    Tok::LBrace
                }
                b'}' => {
                    self.bump();
                    Tok::RBrace
                }
                b';' => {
                    self.bump();
                    Tok::Semi
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'|' => {
                    self.bump();
                    Tok::Bar
                }
                b'&' => {
                    self.bump();
                    Tok::Amp
                }
                b'@' => {
                    self.bump();
                    Tok::At
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Assign
                    } else {
                        Tok::Colon
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::LeftArrow
                    } else {
                        return Err(self.err(start, "expected '-' after '<'"));
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        Tok::FatArrow
                    } else {
                        Tok::Eq
                    }
                }
                b'-' => {
                    self.bump();
                    match self.peek() {
                        Some(b'>') => {
                            self.bump();
                            Tok::ThinArrow
                        }
                        Some(d) if d.is_ascii_digit() => {
                            let n = self.lex_decimal(start)?;
                            Tok::IntLit(-n)
                        }
                        _ => return Err(self.err(start, "expected '>' or digit after '-'")),
                    }
                }
                b'\'' => {
                    self.bump();
                    let name = self.lex_ident_chars();
                    if name.is_empty() {
                        return Err(self.err(start, "expected type variable name after \"'\""));
                    }
                    Tok::TypeVar(name)
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'"') => break,
                            Some(b'\\') => match self.bump() {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                _ => return Err(self.err(start, "bad escape in string")),
                            },
                            Some(c) => s.push(c as char),
                            None => return Err(self.err(start, "unterminated string literal")),
                        }
                    }
                    Tok::StrLit(s)
                }
                b'0' if self.peek2() == Some(b'x') || self.peek2() == Some(b'X') => {
                    self.bump();
                    self.bump();
                    let hex_start = self.pos;
                    while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                        self.bump();
                    }
                    let hex = &self.src[hex_start..self.pos];
                    if hex.is_empty() || !hex.len().is_multiple_of(2) {
                        return Err(self.err(start, "hex literal must have an even number of digits"));
                    }
                    let bytes = (0..hex.len())
                        .step_by(2)
                        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("hex digits"))
                        .collect();
                    Tok::HexLit(bytes)
                }
                d if d.is_ascii_digit() => Tok::IntLit(self.lex_decimal(start)?),
                b'_' => {
                    self.bump();
                    let rest = self.lex_ident_chars();
                    if rest.is_empty() {
                        Tok::Underscore
                    } else {
                        Tok::SpecialIdent(format!("_{rest}"))
                    }
                }
                c if c.is_ascii_alphabetic() => {
                    let word = self.lex_ident_chars();
                    keyword(&word).unwrap_or_else(|| {
                        if word.chars().next().is_some_and(|ch| ch.is_ascii_uppercase()) {
                            Tok::CIdent(word)
                        } else {
                            Tok::LIdent(word)
                        }
                    })
                }
                other => {
                    return Err(self.err(start, format!("unexpected character {:?}", other as char)))
                }
            };
            out.push(Token { tok, span: Span::new(start.0, self.pos, start.1, start.2) });
        }
        Ok(out)
    }

    fn lex_decimal(&mut self, start: (usize, u32, u32)) -> Result<i128, LexError> {
        let num_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            self.bump();
        }
        let text: String = self.src[num_start..self.pos].chars().filter(|c| *c != '_').collect();
        text.parse::<i128>().map_err(|_| self.err(start, "integer literal out of range"))
    }

    fn lex_ident_chars(&mut self) -> String {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        self.src[start..self.pos].to_string()
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'(') if self.peek2() == Some(b'*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    let mut depth = 1u32;
                    loop {
                        match self.peek() {
                            None => return Err(self.err(start, "unterminated comment")),
                            Some(b'(') if self.peek2() == Some(b'*') => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            Some(b'*') if self.peek2() == Some(b')') => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "contract" => Tok::Contract,
        "library" => Tok::Library,
        "transition" => Tok::Transition,
        "procedure" => Tok::Procedure,
        "field" => Tok::Field,
        "fun" => Tok::Fun,
        "tfun" => Tok::TFun,
        "let" => Tok::Let,
        "in" => Tok::In,
        "match" => Tok::Match,
        "with" => Tok::With,
        "end" => Tok::End,
        "builtin" => Tok::Builtin,
        "accept" => Tok::Accept,
        "send" => Tok::Send,
        "event" => Tok::Event,
        "throw" => Tok::Throw,
        "delete" => Tok::Delete,
        "exists" => Tok::Exists,
        "type" => Tok::Type,
        "of" => Tok::Of,
        "Emp" => Tok::Emp,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_statement_forms() {
        assert_eq!(
            toks("x <- balances[_sender]; balances[to] := v"),
            vec![
                Tok::LIdent("x".into()),
                Tok::LeftArrow,
                Tok::LIdent("balances".into()),
                Tok::LBracket,
                Tok::SpecialIdent("_sender".into()),
                Tok::RBracket,
                Tok::Semi,
                Tok::LIdent("balances".into()),
                Tok::LBracket,
                Tok::LIdent("to".into()),
                Tok::RBracket,
                Tok::Assign,
                Tok::LIdent("v".into()),
            ]
        );
    }

    #[test]
    fn distinguishes_eq_and_fat_arrow() {
        assert_eq!(toks("= =>"), vec![Tok::Eq, Tok::FatArrow]);
    }

    #[test]
    fn lexes_typed_int_literals() {
        assert_eq!(
            toks("Uint128 10"),
            vec![Tok::CIdent("Uint128".into()), Tok::IntLit(10)]
        );
        assert_eq!(toks("-42"), vec![Tok::IntLit(-42)]);
    }

    #[test]
    fn lexes_hex_addresses() {
        assert_eq!(toks("0xDEADbeef"), vec![Tok::HexLit(vec![0xde, 0xad, 0xbe, 0xef])]);
        assert!(lex("0x123").is_err());
    }

    #[test]
    fn skips_nested_comments() {
        assert_eq!(toks("(* outer (* inner *) still *) x"), vec![Tok::LIdent("x".into())]);
        assert!(lex("(* unterminated").is_err());
    }

    #[test]
    fn strings_support_escapes() {
        assert_eq!(toks(r#""a\nb""#), vec![Tok::StrLit("a\nb".into())]);
        assert!(lex("\"open").is_err());
    }

    #[test]
    fn underscore_alone_vs_special_ident() {
        assert_eq!(toks("_ _sender"), vec![Tok::Underscore, Tok::SpecialIdent("_sender".into())]);
    }

    #[test]
    fn keywords_are_not_idents() {
        assert_eq!(toks("match with end"), vec![Tok::Match, Tok::With, Tok::End]);
    }

    #[test]
    fn spans_track_lines() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[1].span.line, 2);
        assert_eq!(tokens[1].span.col, 3);
    }

    #[test]
    fn type_vars_lex() {
        assert_eq!(toks("'A"), vec![Tok::TypeVar("A".into())]);
    }
}
