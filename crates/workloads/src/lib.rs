//! Workload generators for the CoSplit evaluation.
//!
//! * [`scenarios`] — the eight contract workloads of Fig. 14 (FT fund, FT
//!   transfer, CF donate, NFT mint, NFT transfer, ProofIPFS register, UD
//!   bestow, UD config);
//! * [`runner`] — deploys a scenario on a [`chain::network::Network`] and
//!   measures sustained throughput over epochs;
//! * [`ethtrace`] — the synthetic Ethereum transaction trace behind Fig. 1
//!   (see DESIGN.md for the substitution rationale);
//! * [`seeds`] — named seed streams, so every random choice in a simulated
//!   run flows from one master seed.
//!
//! # Examples
//!
//! ```
//! use workloads::scenarios::{build, Kind};
//! use workloads::runner::run;
//!
//! let scenario = build(Kind::CfDonate, 20, 300, 42);
//! let result = run(&scenario, 3, true, 1);
//! assert!(result.committed() > 0);
//! ```

pub mod ethtrace;
pub mod runner;
pub mod scenarios;
pub mod seeds;
