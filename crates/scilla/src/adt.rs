//! Algebraic data type registry: built-in ADTs plus user declarations.

use crate::ast::{CtorDef, LibEntry};
use crate::error::TypeError;
use crate::span::Span;
use crate::types::Type;
use std::collections::HashMap;

/// One ADT: its type parameters and constructors.
#[derive(Debug, Clone)]
pub struct AdtDef {
    /// Type name (`Option`, `Bool`, user types…).
    pub name: String,
    /// Type parameter names (empty for monomorphic types).
    pub tvars: Vec<String>,
    /// Constructors: name and argument types (which may mention `tvars`).
    pub ctors: Vec<(String, Vec<Type>)>,
}

/// Registry resolving type names and constructor names.
#[derive(Debug, Clone)]
pub struct AdtRegistry {
    by_type: HashMap<String, AdtDef>,
    ctor_to_type: HashMap<String, String>,
}

impl AdtRegistry {
    /// A registry containing only the built-in ADTs
    /// (`Bool`, `Option`, `List`, `Pair`, `Unit`).
    pub fn builtin() -> Self {
        let mut reg = AdtRegistry { by_type: HashMap::new(), ctor_to_type: HashMap::new() };
        let a = || Type::TypeVar("A".into());
        let b = || Type::TypeVar("B".into());
        reg.insert_def(AdtDef {
            name: "Bool".into(),
            tvars: vec![],
            ctors: vec![("True".into(), vec![]), ("False".into(), vec![])],
        });
        reg.insert_def(AdtDef {
            name: "Option".into(),
            tvars: vec!["A".into()],
            ctors: vec![("Some".into(), vec![a()]), ("None".into(), vec![])],
        });
        reg.insert_def(AdtDef {
            name: "List".into(),
            tvars: vec!["A".into()],
            ctors: vec![
                ("Cons".into(), vec![a(), Type::Adt("List".into(), vec![a()])]),
                ("Nil".into(), vec![]),
            ],
        });
        reg.insert_def(AdtDef {
            name: "Pair".into(),
            tvars: vec!["A".into(), "B".into()],
            ctors: vec![("Pair".into(), vec![a(), b()])],
        });
        reg.insert_def(AdtDef {
            name: "Unit".into(),
            tvars: vec![],
            ctors: vec![("Unit".into(), vec![])],
        });
        reg
    }

    /// Builds a registry from the built-ins plus the `type` declarations in a
    /// library.
    ///
    /// # Errors
    ///
    /// Rejects duplicate type or constructor names.
    pub fn with_library(entries: &[LibEntry]) -> Result<Self, TypeError> {
        let mut reg = Self::builtin();
        for entry in entries {
            if let LibEntry::TypeDef { name, ctors } = entry {
                reg.declare(&name.name, ctors, name.span)?;
            }
        }
        Ok(reg)
    }

    fn insert_def(&mut self, def: AdtDef) {
        for (c, _) in &def.ctors {
            self.ctor_to_type.insert(c.clone(), def.name.clone());
        }
        self.by_type.insert(def.name.clone(), def);
    }

    /// Declares a user (monomorphic) ADT.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the type or any constructor is already
    /// declared.
    pub fn declare(&mut self, name: &str, ctors: &[CtorDef], span: Span) -> Result<(), TypeError> {
        if self.by_type.contains_key(name) {
            return Err(TypeError { span, message: format!("type '{name}' is already declared") });
        }
        for c in ctors {
            if self.ctor_to_type.contains_key(&c.name.name) {
                return Err(TypeError {
                    span: c.name.span,
                    message: format!("constructor '{}' is already declared", c.name.name),
                });
            }
        }
        self.insert_def(AdtDef {
            name: name.to_string(),
            tvars: vec![],
            ctors: ctors.iter().map(|c| (c.name.name.clone(), c.arg_types.clone())).collect(),
        });
        Ok(())
    }

    /// Looks up an ADT by type name.
    pub fn adt(&self, name: &str) -> Option<&AdtDef> {
        self.by_type.get(name)
    }

    /// Resolves a constructor name to its ADT definition.
    pub fn adt_of_ctor(&self, ctor: &str) -> Option<&AdtDef> {
        self.ctor_to_type.get(ctor).and_then(|t| self.by_type.get(t))
    }

    /// The declared argument types of `ctor`, instantiated with `type_args`
    /// for the owning ADT's parameters, together with the resulting ADT type.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the constructor is unknown or the number of
    /// type arguments does not match.
    pub fn instantiate_ctor(
        &self,
        ctor: &str,
        type_args: &[Type],
        span: Span,
    ) -> Result<(Vec<Type>, Type), TypeError> {
        let def = self.adt_of_ctor(ctor).ok_or_else(|| TypeError {
            span,
            message: format!("unknown constructor '{ctor}'"),
        })?;
        if type_args.len() != def.tvars.len() {
            return Err(TypeError {
                span,
                message: format!(
                    "constructor '{ctor}' of type '{}' expects {} type argument(s), got {}",
                    def.name,
                    def.tvars.len(),
                    type_args.len()
                ),
            });
        }
        let (_, declared) = def
            .ctors
            .iter()
            .find(|(c, _)| c == ctor)
            .expect("ctor_to_type is consistent with by_type");
        let subst_all = |t: &Type| {
            def.tvars
                .iter()
                .zip(type_args)
                .fold(t.clone(), |acc, (tv, arg)| acc.subst(tv, arg))
        };
        let args = declared.iter().map(subst_all).collect();
        let result = Type::Adt(def.name.clone(), type_args.to_vec());
        Ok((args, result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Ident;

    #[test]
    fn builtins_are_registered() {
        let reg = AdtRegistry::builtin();
        assert!(reg.adt("Option").is_some());
        assert_eq!(reg.adt_of_ctor("Cons").unwrap().name, "List");
        assert!(reg.adt("Nat").is_none());
    }

    #[test]
    fn instantiate_some() {
        let reg = AdtRegistry::builtin();
        let (args, result) = reg.instantiate_ctor("Some", &[Type::Uint(128)], Span::dummy()).unwrap();
        assert_eq!(args, vec![Type::Uint(128)]);
        assert_eq!(result, Type::option(Type::Uint(128)));
    }

    #[test]
    fn instantiate_cons_substitutes_recursively() {
        let reg = AdtRegistry::builtin();
        let (args, _) = reg.instantiate_ctor("Cons", &[Type::Str], Span::dummy()).unwrap();
        assert_eq!(args, vec![Type::Str, Type::list(Type::Str)]);
    }

    #[test]
    fn wrong_type_arg_count_is_an_error() {
        let reg = AdtRegistry::builtin();
        assert!(reg.instantiate_ctor("Some", &[], Span::dummy()).is_err());
    }

    #[test]
    fn duplicate_ctor_rejected() {
        let mut reg = AdtRegistry::builtin();
        let ctors = vec![CtorDef { name: Ident::new("Some"), arg_types: vec![] }];
        assert!(reg.declare("MyType", &ctors, Span::dummy()).is_err());
    }

    #[test]
    fn user_type_declares_and_resolves() {
        let mut reg = AdtRegistry::builtin();
        let ctors = vec![
            CtorDef { name: Ident::new("Buy"), arg_types: vec![Type::Uint(128)] },
            CtorDef { name: Ident::new("Sell"), arg_types: vec![Type::Uint(128)] },
        ];
        reg.declare("Order", &ctors, Span::dummy()).unwrap();
        let (args, result) = reg.instantiate_ctor("Buy", &[], Span::dummy()).unwrap();
        assert_eq!(args, vec![Type::Uint(128)]);
        assert_eq!(result, Type::Adt("Order".into(), vec![]));
    }
}
