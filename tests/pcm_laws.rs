//! Property tests for the analysis' algebra (DESIGN.md invariant 1): the
//! cardinality operators of paper Fig. 6 and the contribution-type
//! operators built on them form the partial-commutative-monoid-style
//! structure the paper's §2.3 reasoning relies on.

use cosplit::analysis::domain::{Cardinality, ContribSource, ContribType, Op, PseudoField};
use proptest::prelude::*;

fn card() -> impl Strategy<Value = Cardinality> {
    prop_oneof![Just(Cardinality::Zero), Just(Cardinality::One), Just(Cardinality::Many)]
}

fn source() -> impl Strategy<Value = ContribSource> {
    prop_oneof![
        "[a-d]".prop_map(|f| ContribSource::Field(PseudoField::whole(f))),
        ("[a-d]", "[w-z]").prop_map(|(f, k)| ContribSource::Field(PseudoField::entry(f, vec![k]))),
        "[a-d]".prop_map(ContribSource::Param),
        "[0-9]".prop_map(ContribSource::Const),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Cond),
        prop_oneof![Just("add"), Just("sub"), Just("mul"), Just("eq")]
            .prop_map(|b| Op::Builtin(b.to_string())),
    ]
}

fn contrib_type() -> impl Strategy<Value = ContribType> {
    prop::collection::vec((source(), op()), 0..4).prop_map(|pairs| {
        pairs.into_iter().fold(ContribType::bottom(), |acc, (cs, op)| {
            acc.add(&ContribType::source(cs).with_op(op))
        })
    })
}

proptest! {
    // ---- Cardinality algebra (Fig. 6 tables) ----

    #[test]
    fn card_add_commutative(a in card(), b in card()) {
        prop_assert_eq!(a.add(b), b.add(a));
    }

    #[test]
    fn card_add_associative(a in card(), b in card(), c in card()) {
        prop_assert_eq!(a.add(b).add(c), a.add(b.add(c)));
    }

    #[test]
    fn card_zero_is_add_identity(a in card()) {
        prop_assert_eq!(Cardinality::Zero.add(a), a);
    }

    #[test]
    fn card_join_is_a_semilattice(a in card(), b in card(), c in card()) {
        prop_assert_eq!(a.join(a), a);                       // idempotent
        prop_assert_eq!(a.join(b), b.join(a));               // commutative
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c))); // associative
    }

    #[test]
    fn card_mul_commutative_associative(a in card(), b in card(), c in card()) {
        prop_assert_eq!(a.mul(b), b.mul(a));
        prop_assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
    }

    #[test]
    fn card_mul_zero_annihilates(a in card()) {
        prop_assert_eq!(Cardinality::Zero.mul(a), Cardinality::Zero);
    }

    #[test]
    fn card_join_bounds_both(a in card(), b in card()) {
        // ⊔ is an upper bound wrt the order 0 ⊑ 1 ⊑ ω.
        let j = a.join(b);
        prop_assert!(j >= a && j >= b);
    }

    // ---- Contribution types ----

    #[test]
    fn type_add_commutative(a in contrib_type(), b in contrib_type()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn type_add_associative(a in contrib_type(), b in contrib_type(), c in contrib_type()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn type_bottom_is_add_identity(a in contrib_type()) {
        prop_assert_eq!(ContribType::bottom().add(&a), a.clone());
        prop_assert_eq!(a.add(&ContribType::bottom()), a);
    }

    #[test]
    fn type_join_commutative(a in contrib_type(), b in contrib_type()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
    }

    #[test]
    fn type_join_idempotent(a in contrib_type()) {
        prop_assert_eq!(a.join(&a), a);
    }

    #[test]
    fn type_top_absorbs(a in contrib_type()) {
        prop_assert!(a.add(&ContribType::Top).is_top());
        prop_assert!(a.join(&ContribType::Top).is_top());
    }

    #[test]
    fn with_op_preserves_sources(a in contrib_type(), o in op()) {
        let b = a.with_op(o.clone());
        match (a.sources(), b.sources()) {
            (Some(sa), Some(sb)) => {
                prop_assert_eq!(sa.len(), sb.len());
                for (cs, c) in sb {
                    prop_assert!(c.ops.contains(&o));
                    prop_assert_eq!(c.card, sa[cs].card);
                }
            }
            (None, None) => {}
            _ => prop_assert!(false, "with_op changed topness"),
        }
    }

    #[test]
    fn adapt_cond_zeroes_all_cardinalities(a in contrib_type(), same in any::<bool>()) {
        if let Some(sources) = a.adapt_cond(same).sources() {
            for c in sources.values() {
                prop_assert_eq!(c.card, Cardinality::Zero);
                prop_assert!(c.ops.contains(&Op::Cond));
            }
        }
    }
}
