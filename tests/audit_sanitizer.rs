//! Acceptance test for the effect-trace sanitizer: a deliberately weakened
//! static summary (one dropped `Write` effect) must be caught by the dynamic
//! footprint auditor with a span-bearing violation and a replayable repro
//! artifact, while the honest pipeline stays violation-free.

use cosplit::analysis::analysis::summarize_contract;
use cosplit::analysis::audit::ViolationKind;
use cosplit::analysis::effects::Effect;
use cosplit::chain::executor::execute_batch;
use cosplit::chain::network::{ChainConfig, Network};
use cosplit::chain::sim::{
    differential, reference_config, run_sim, FaultPlan, ReproArtifact, SimConfig,
};
use cosplit::workloads::runner::world_builder;
use cosplit::workloads::scenarios::{build, Kind};
use cosplit::workloads::seeds;

const MASTER_SEED: u64 = 0xA0D1;

/// Pins every deployed contract's auditor summaries to a weakened copy of
/// the real analysis result: the *last* static `Write` of each non-⊤
/// transition summary is dropped. Execution is untouched — only the
/// auditor's reference is lied to.
fn weaken_summaries(net: &Network) {
    let mut any_dropped = false;
    for c in net.state().contracts.values() {
        let mut summaries = summarize_contract(c.compiled.checked());
        for s in &mut summaries {
            if s.has_top() {
                continue;
            }
            if let Some(i) = s.effects.iter().rposition(|e| matches!(e, Effect::Write(..))) {
                s.effects.remove(i);
                any_dropped = true;
            }
        }
        c.override_summaries(summaries);
    }
    assert!(any_dropped, "mutation must drop at least one static write");
}

fn scenario() -> cosplit::workloads::scenarios::Scenario {
    build(Kind::FtTransfer, 24, 96, seeds::derive(MASTER_SEED, "audit-sanitizer"))
}

#[test]
fn weakened_summary_yields_span_bearing_typed_violations() {
    // Drive one epoch's shard batches directly so the violations arrive as
    // typed values, not rendered strings.
    let cfg = ChainConfig::small(4, true);
    let sc = scenario();
    let net = world_builder(&sc)(&cfg);
    weaken_summaries(&net);

    let mut pool = sc.load.clone();
    let packets = net.form_packets(&mut pool);
    let mut violations = Vec::new();
    for (s, batch) in packets.shard_batches.into_iter().enumerate() {
        let ecfg = net.shard_executor_config(s as u32);
        assert!(ecfg.audit, "ChainConfig::small must audit");
        violations.extend(execute_batch(&ecfg, net.state(), batch).audit_violations);
    }
    violations.extend(
        execute_batch(&net.ds_executor_config(), net.state(), packets.ds_batch)
            .audit_violations,
    );

    assert!(!violations.is_empty(), "dropped write must escape containment");
    let v = violations
        .iter()
        .find(|v| v.kind == ViolationKind::UnsummarisedWrite)
        .unwrap_or_else(|| panic!("no UnsummarisedWrite among {violations:?}"));
    assert!(v.span.line > 0, "violation must carry a real source span: {v:?}");
    assert!(v.observed_op.is_some(), "{v:?}");
    assert!(!v.concrete.is_empty(), "{v:?}");
    // The wire form round-trips, so the violation can ride a repro artifact.
    let back = cosplit::analysis::audit::AuditViolation::from_json(&v.to_json()).unwrap();
    assert_eq!(&back, v);
}

#[test]
fn weakened_summary_produces_replayable_repro_artifact() {
    let sharded_cfg = ChainConfig::small(4, true);
    let reference_cfg = reference_config(&sharded_cfg);
    let sc = scenario();
    let honest = world_builder(&sc);
    let weakened = |cfg: &ChainConfig| {
        let net = honest(cfg);
        weaken_summaries(&net);
        net
    };
    let sim_cfg = SimConfig::new(MASTER_SEED);
    let plan = FaultPlan::none();

    // The honest pipeline is clean on the same load.
    let clean = differential(&honest, &sc.load, &sharded_cfg, &reference_cfg, &sim_cfg, &plan);
    assert!(clean.is_clean(), "honest run diverged: {:?}", clean.divergences);

    // The weakened pipeline diverges — purely through audit violations,
    // because tracing never alters execution.
    let diff = differential(&weakened, &sc.load, &sharded_cfg, &reference_cfg, &sim_cfg, &plan);
    assert!(!diff.is_clean(), "weakened summaries must be caught");
    for d in &diff.divergences {
        let s = d.to_string();
        assert!(s.contains("audit violation"), "unexpected divergence: {s}");
    }
    let rendered = diff.divergences[0].to_string();
    assert!(rendered.contains("UnsummarisedWrite"), "{rendered}");
    assert!(rendered.contains(" at "), "span missing from {rendered}");
    assert!(!rendered.contains(" at 0:0"), "dummy span in {rendered}");

    // The artifact round-trips through disk…
    let artifact = ReproArtifact::from_diff(
        &diff,
        &sim_cfg,
        sharded_cfg.num_shards,
        &plan,
        sc.load.clone(),
    );
    let dir = std::env::temp_dir().join(format!("cosplit_audit_repro_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("audit_repro.json");
    artifact.write(&path).unwrap();
    let back = ReproArtifact::read(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(back, artifact);
    assert!(!back.divergences.is_empty());

    // …and replaying it (same seed, plan, and trace) reproduces the catch.
    let replay_cfg = SimConfig::new(back.seed);
    let replay = differential(
        &weakened,
        &back.trace,
        &ChainConfig::small(back.num_shards, true),
        &reference_cfg,
        &replay_cfg,
        &back.plan,
    );
    assert!(!replay.is_clean(), "replay must reproduce the violation");
    assert_eq!(
        replay.divergences[0].to_string(),
        diff.divergences[0].to_string(),
        "replay is deterministic"
    );
}

#[test]
fn weakened_summary_is_flagged_in_sim_reports_and_telemetry() {
    let cfg = ChainConfig::small(4, true);
    let sc = scenario();
    let net = &mut world_builder(&sc)(&cfg);
    weaken_summaries(net);

    let before = telemetry::registry().snapshot().counter("chain.audit.violations");
    let mut pool = sc.load.clone();
    let report = run_sim(net, &mut pool, &SimConfig::new(MASTER_SEED), &FaultPlan::none());
    assert!(report.drained);
    assert!(
        report.safety_violations.iter().any(|v| v.contains("audit violation")),
        "{:?}",
        report.safety_violations
    );
    let after = telemetry::registry().snapshot().counter("chain.audit.violations");
    assert!(after > before, "violation counter must move ({before} -> {after})");
}
