//! Interprocedural call-graph smoke test for CI (`scripts/check.sh`).
//!
//! Three gates:
//!
//! 1. **Corpus graph** — extracts call sites and builds the static
//!    cross-contract graph over every corpus contract (the 49-contract
//!    mainnet sample plus the harness pair) panic-free, and the JSON wire
//!    encoding round-trips losslessly.
//! 2. **Differential suite** — the relay-chain workload plus two Fig. 14
//!    controls run through the differential oracle with `compose_calls`
//!    enabled, fault-free and under a generated fault plan. Any divergence
//!    from the 1-shard sequential reference fails loudly.
//! 3. **Dispatch gate** — composition must strictly cut the relay chain's
//!    DS share versus composition-off, and must leave the single-contract
//!    controls untouched.
//!
//! Usage: `callgraph_smoke [seed]` (default seed 2027). The compose gauges
//! are merged into `BENCH_metrics.json` (override with `BENCH_METRICS`)
//! without clobbering gauges earlier smoke runs recorded there.

use chain::network::ChainConfig;
use chain::sim::{differential, reference_config, FaultPlan, SimConfig};
use cosplit_bench::experiments::{callgraph_rows, corpus_call_graph};
use cosplit_analysis::callgraph::CallGraph;
use workloads::runner::world_builder;
use workloads::scenarios::{build, Kind};
use workloads::seeds;

const SHARDS: u32 = 4;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(2027);
    println!("callgraph-smoke: master seed {seed}");
    telemetry::set_enabled(true);

    let mut failures = 0u32;
    failures += graph_gate();
    failures += differential_gate(seed);
    failures += dispatch_gate();

    let metrics_path =
        std::env::var("BENCH_METRICS").unwrap_or_else(|_| "BENCH_metrics.json".into());
    let mut snap = telemetry::registry().snapshot();
    // Merge, don't clobber: earlier smoke runs (audit_smoke's lint census)
    // already left their gauges in the file.
    if let Ok(prev) = std::fs::read_to_string(&metrics_path) {
        if let Ok(prev) = telemetry::Snapshot::from_json(&prev) {
            for (k, v) in prev.counters {
                snap.counters.entry(k).or_insert(v);
            }
            for (k, v) in prev.gauges {
                snap.gauges.entry(k).or_insert(v);
            }
        }
    }
    match std::fs::write(&metrics_path, snap.to_json()) {
        Ok(()) => println!("metrics snapshot merged into {metrics_path}"),
        Err(e) => eprintln!("failed to write {metrics_path}: {e}"),
    }

    if failures > 0 {
        eprintln!("callgraph-smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("callgraph-smoke: graph sound, wire stable, composed dispatch divergence-free");
}

/// Builds the graph over the whole corpus and checks the wire encoding.
fn graph_gate() -> u32 {
    let entries: Vec<_> = scilla::corpus::all().iter().collect();
    let graph = corpus_call_graph(&entries);
    let resolved = graph.edges.iter().filter(|e| e.is_resolved()).count();
    println!(
        "  graph: {} contracts, {} send edges, {} resolved ({:.0}%)",
        graph.contracts.len(),
        graph.edges.len(),
        resolved,
        graph.resolved_fraction() * 100.0
    );
    let mut failures = 0u32;
    if graph.contracts.len() < 49 {
        eprintln!("FAIL graph: expected the full corpus, got {} contracts", graph.contracts.len());
        failures += 1;
    }
    if graph.edges.is_empty() {
        eprintln!("FAIL graph: the corpus has send sites, but no edges were extracted");
        failures += 1;
    }
    match CallGraph::from_json(&graph.to_json()) {
        Ok(round) if round == graph => println!("  ok wire: JSON round-trip is lossless"),
        Ok(_) => {
            eprintln!("FAIL wire: round-tripped graph differs");
            failures += 1;
        }
        Err(e) => {
            eprintln!("FAIL wire: {e}");
            failures += 1;
        }
    }
    if !graph.to_dot().contains("digraph") {
        eprintln!("FAIL wire: DOT rendering is malformed");
        failures += 1;
    }
    failures
}

/// The differential oracle with composition enabled: the relay chain and
/// two single-contract controls must match the sequential reference.
fn differential_gate(seed: u64) -> u32 {
    let sharded_cfg = ChainConfig { compose_calls: true, ..ChainConfig::small(SHARDS, true) };
    let reference_cfg = reference_config(&sharded_cfg);
    let kinds = [Kind::RelayPing, Kind::FtTransfer, Kind::IpfsRegister];

    let mut failures = 0u32;
    for kind in kinds {
        let scenario = build(kind, 40, 500, seeds::derive(seed, kind.label()));
        let builder = world_builder(&scenario);
        let label = scenario.kind.label();
        let plans = [
            ("fault-free", FaultPlan::none()),
            (
                "generated",
                FaultPlan::generate(seeds::derive(seed, "callgraph-plan"), 8, SHARDS, 0.35),
            ),
        ];
        for (plan_label, plan) in &plans {
            let diff = differential(
                &builder,
                &scenario.load,
                &sharded_cfg,
                &reference_cfg,
                &SimConfig::new(seed),
                plan,
            );
            if diff.is_clean() {
                println!(
                    "  ok {label} [{plan_label}]: composed run matches the reference, {} outcomes",
                    diff.sharded.outcomes.len()
                );
            } else {
                failures += 1;
                eprintln!("FAIL {label} [{plan_label}]: {} divergence(s)", diff.divergences.len());
                for d in diff.divergences.iter().take(10) {
                    eprintln!("    {d}");
                }
            }
        }
    }
    failures
}

/// Composition must strictly reduce the relay chain's DS share and leave
/// the controls unchanged; records the acceptance gauges as a side effect.
fn dispatch_gate() -> u32 {
    let rows = callgraph_rows(40, 500, 3);
    let mut failures = 0u32;
    for r in &rows {
        println!(
            "  dispatch {}: DS {}‰ (compose off) → {}‰ (on), composed-local {}‰",
            r.label, r.to_ds_off_permille, r.to_ds_on_permille, r.composed_permille
        );
        if r.label == "Relay ping" {
            if r.to_ds_on_permille >= r.to_ds_off_permille {
                eprintln!("FAIL {}: composition did not cut the DS share", r.label);
                failures += 1;
            }
            if r.composed_permille == 0 {
                eprintln!("FAIL {}: no composed-local dispatch decisions", r.label);
                failures += 1;
            }
        } else if r.to_ds_on_permille != r.to_ds_off_permille {
            eprintln!("FAIL {}: the compose flag moved a single-contract workload", r.label);
            failures += 1;
        }
    }
    failures
}
