//! Error types for the blockchain simulator.

use std::fmt;

/// An error raised while deploying a contract.
#[derive(Debug)]
pub enum DeployError {
    /// Lexing/parsing failed.
    Parse(scilla::error::ParseError),
    /// Type checking failed.
    Type(scilla::error::TypeError),
    /// Library evaluation or field initialisation failed.
    Exec(scilla::error::ExecError),
    /// The submitted sharding signature did not validate against the
    /// re-derived one (paper §4.3, "Validating Sharding Signatures").
    InvalidSignature,
    /// The target address already holds a contract.
    AddressTaken,
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Parse(e) => write!(f, "deployment rejected: {e}"),
            DeployError::Type(e) => write!(f, "deployment rejected: {e}"),
            DeployError::Exec(e) => write!(f, "deployment rejected: {e}"),
            DeployError::InvalidSignature => {
                write!(f, "deployment rejected: sharding signature does not validate")
            }
            DeployError::AddressTaken => write!(f, "deployment rejected: address already in use"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<scilla::error::ParseError> for DeployError {
    fn from(e: scilla::error::ParseError) -> Self {
        DeployError::Parse(e)
    }
}

impl From<scilla::error::TypeError> for DeployError {
    fn from(e: scilla::error::TypeError) -> Self {
        DeployError::Type(e)
    }
}

impl From<scilla::error::ExecError> for DeployError {
    fn from(e: scilla::error::ExecError) -> Self {
        DeployError::Exec(e)
    }
}

/// An error raised while merging per-shard state deltas.
///
/// Under correct CoSplit dispatch these cannot occur: ownership guarantees
/// per-component writer exclusivity and `IntMerge` deltas always compose.
/// They are surfaced (rather than panicking) so property tests can assert
/// their absence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Two shards overwrote the same state component.
    OverwriteConflict {
        /// The contract whose state conflicted.
        contract: String,
        /// The conflicting component (field + rendered key path).
        component: String,
    },
    /// Applying an integer delta under- or overflowed the component.
    DeltaOutOfRange {
        /// The contract whose state overflowed.
        contract: String,
        /// The affected component.
        component: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::OverwriteConflict { contract, component } => {
                write!(f, "merge conflict: {contract}:{component} overwritten by two shards")
            }
            MergeError::DeltaOutOfRange { contract, component } => {
                write!(f, "merge failed: {contract}:{component} delta out of range")
            }
        }
    }
}

impl std::error::Error for MergeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_describe_the_failure() {
        let e = MergeError::OverwriteConflict { contract: "c".into(), component: "f[k]".into() };
        assert!(e.to_string().contains("f[k]"));
        assert!(DeployError::InvalidSignature.to_string().contains("signature"));
    }
}
