//! End-to-end lifecycle tracing through a real epoch: dispatch decisions,
//! shard executors (with intra-shard parallel waves), and the DS committee
//! must leave a well-formed span forest in the flight recorder, and every
//! committed receipt must map to a complete dispatch→commit lifecycle
//! chain. The tracing-off run is counter-audited to record nothing.

use chain::address::Address;
use chain::executor::TxStatus;
use chain::network::{ChainConfig, Network};
use chain::tx::Transaction;
use cosplit_analysis::signature::WeakReads;
use scilla::value::Value;
use std::collections::BTreeSet;
use std::sync::Mutex;
use telemetry::{names, trace};

/// Serialises tests in this binary: tracing state is process-global.
static TELEMETRY_GUARD: Mutex<()> = Mutex::new(());

const TOKEN: &str = r#"
    contract Token ()
    field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
    field total_supply : Uint128 = Uint128 0
    transition Mint (amount : Uint128)
      b_opt <- balances[_sender];
      b2 = match b_opt with
        | Some b => builtin add b amount
        | None => amount
        end;
      balances[_sender] := b2;
      s <- total_supply;
      s2 = builtin add s amount;
      total_supply := s2
    end
    transition Burn ()
      delete balances[_sender]
    end
"#;

const USERS: u64 = 16;

/// A network with the token deployed under CoSplit sharding and a pool of
/// Mint calls (owner-sharded) plus a few native payments.
fn world(workers: usize) -> (Network, Vec<Transaction>) {
    let mut config = ChainConfig::small(2, true);
    config.audit = false;
    config.parallel_intra_shard = workers;
    let mut net = Network::new(config);
    let token = Address::from_index(900);
    for i in 0..USERS {
        net.fund_account(Address::from_index(1 + i), 1_000_000);
    }
    net.deploy(token, TOKEN, vec![], Some((&["Mint", "Burn"], WeakReads::AcceptAll)))
        .expect("token deploys");

    let mut pool = Vec::new();
    for i in 0..USERS {
        let user = Address::from_index(1 + i);
        pool.push(Transaction::call(
            100 + i,
            user,
            1,
            token,
            "Mint",
            vec![("amount".into(), Value::Uint(128, 10 + i as u128))],
        ));
    }
    for i in 0..4u64 {
        pool.push(Transaction::payment(
            200 + i,
            Address::from_index(1 + i),
            2,
            Address::from_index(1 + USERS + i),
            50,
        ));
    }
    (net, pool)
}

#[test]
fn traced_epoch_yields_complete_lifecycles_and_a_well_formed_forest() {
    let _g = TELEMETRY_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    let (mut net, mut pool) = world(2);

    trace::set_tracing(true);
    trace::recorder().clear();
    let report = net.run_epoch(&mut pool);
    trace::set_tracing(false);
    let records = trace::recorder().drain();

    assert!(report.committed >= USERS as usize, "the mint batch commits");
    assert!(!records.is_empty(), "the epoch left trace records");
    trace::validate_span_tree(&records).expect("span forest is well-formed");

    // Cross-thread stitching: every executor batch span hangs off the
    // epoch span's subtree, none is an orphan root.
    let epoch_span = records
        .iter()
        .find(|r| r.name == "chain.network.epoch_duration")
        .expect("epoch span recorded");
    let batch_spans: Vec<_> =
        records.iter().filter(|r| r.name == "chain.executor.batch_duration").collect();
    assert!(batch_spans.len() >= 3, "one batch span per committee (2 shards + DS)");
    for b in &batch_spans {
        assert_ne!(b.parent, 0, "shard executor spans adopt the spawning span");
        assert!(b.start_micros >= epoch_span.start_micros);
        assert!(b.end_micros() <= epoch_span.end_micros());
    }

    // Lifecycle coverage: every committed receipt has a complete
    // dispatch→commit chain with a reason attribution.
    let committed_ids: BTreeSet<u64> = report
        .receipts
        .iter()
        .filter(|r| r.status == TxStatus::Success)
        .map(|r| r.tx_id)
        .collect();
    assert_eq!(committed_ids.len(), report.committed);
    let lifecycles = trace::build_lifecycles(&records);
    for id in &committed_ids {
        let lc = lifecycles
            .iter()
            .find(|lc| lc.tx_id == *id)
            .unwrap_or_else(|| panic!("committed tx {id} has no lifecycle"));
        assert!(
            lc.complete_commit_chain(),
            "tx {id}: dispatch(reason)→commit chain incomplete: {lc:?}"
        );
        assert!(lc.dispatch_reason().is_some(), "tx {id} lost its dispatch reason");
        assert!(lc.assignment().is_some(), "tx {id} lost its executor role");
        assert_eq!(lc.outcome(), Some("success"));
    }

    // The Chrome export of a real epoch stays loadable.
    trace::validate_json(&trace::chrome_trace_json(&records)).expect("chrome export parses");
}

/// A ProofIPFS world whose `Register` calls have two-shard footprints
/// (sender account + string-keyed registry component), plus the cross-shard
/// commit stage enabled — the traced epoch must show the full
/// dispatch→prepare→vote→commit hop chain for every such transaction.
fn xshard_world() -> (Network, Vec<Transaction>) {
    let mut config = ChainConfig::small(4, true);
    config.audit = false;
    config.cross_shard_commit = true;
    let mut net = Network::new(config);
    let admin = Address::from_index(999);
    net.fund_account(admin, 1_000_000_000);
    for i in 0..USERS {
        net.fund_account(Address::from_index(1 + i), 1_000_000_000);
    }
    let contract = Address::from_index(901);
    let source = scilla::corpus::get("ProofIPFS").expect("corpus contract").source;
    net.deploy(
        contract,
        source,
        vec![("initial_admin".to_string(), admin.to_value())],
        Some((&["Register"], WeakReads::AcceptAll)),
    )
    .expect("ProofIPFS deploys");

    // One Register per user, each with a hash string scanned until the
    // footprint actually spans shards (dispatches to the xshard stage).
    let policy = chain::dispatch::DispatchPolicy {
        num_shards: 4,
        use_cosplit: true,
        relaxed_nonces: true,
        cross_shard_commit: true,
        compose_calls: false,
    };
    let pool: Vec<Transaction> = (0..USERS)
        .map(|i| {
            (0..256u32)
                .map(|h| {
                    Transaction::call(
                        300 + i,
                        Address::from_index(1 + i),
                        1,
                        contract,
                        "Register",
                        vec![(
                            "ipfs_hash".into(),
                            Value::Str(format!("Qm{i:030}{h:030}")),
                        )],
                    )
                    .with_amount(10)
                })
                .find(|tx| {
                    chain::dispatch::dispatch_policy(tx, net.state(), &policy).assignment
                        == chain::dispatch::Assignment::XShard
                })
                .expect("some hash maps off the sender's home shard")
        })
        .collect();
    (net, pool)
}

#[test]
fn cross_shard_commits_leave_complete_prepare_vote_commit_chains() {
    let _g = TELEMETRY_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    let (mut net, mut pool) = xshard_world();
    let expected: BTreeSet<u64> = pool.iter().map(|t| t.id).collect();

    trace::set_tracing(true);
    trace::recorder().clear();
    let report = net.run_epoch(&mut pool);
    trace::set_tracing(false);
    let records = trace::recorder().drain();

    assert_eq!(report.committed, expected.len(), "every Register commits: {report:?}");
    trace::validate_span_tree(&records).expect("span forest is well-formed");

    let lifecycles = trace::build_lifecycles(&records);
    for id in &expected {
        let lc = lifecycles
            .iter()
            .find(|lc| lc.tx_id == *id)
            .unwrap_or_else(|| panic!("tx {id} has no lifecycle"));
        assert_eq!(
            lc.assignment(),
            Some("xshard"),
            "tx {id} should ride the cross-shard stage: {lc:?}"
        );
        assert_eq!(lc.dispatch_reason(), Some("xshard"));
        assert!(
            lc.complete_commit_chain(),
            "tx {id}: dispatch→prepare→votes→commit chain incomplete: {lc:?}"
        );
    }

    // The hop chain is real, not vacuous: each transaction voted once per
    // participant (≥ 2 shards each), and the commit hop closed it.
    let votes = records.iter().filter(|r| r.name == names::TX_XSHARD_VOTE).count();
    let commits = records.iter().filter(|r| r.name == names::TX_XSHARD_COMMIT).count();
    assert_eq!(commits, expected.len());
    assert!(
        votes >= 2 * expected.len(),
        "two-shard footprints cast at least two votes each ({votes})"
    );
    assert!(net.lock_table().is_empty(), "the epoch releases every lock");
}

#[test]
fn tracing_off_epoch_records_nothing() {
    let _g = TELEMETRY_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::set_enabled(true);
    let (mut net, mut pool) = world(2);

    trace::set_tracing(false);
    trace::recorder().clear();
    let before = telemetry::registry().snapshot();
    let report = net.run_epoch(&mut pool);
    let delta = telemetry::registry().snapshot().diff(&before);

    assert!(report.committed > 0);
    assert!(trace::recorder().is_empty(), "disabled tracing must not buffer records");
    assert_eq!(delta.counter(names::TRACE_RECORDS), 0, "no record was counted");
    assert_eq!(trace::current_span(), 0, "span stack is empty after the epoch");
}
