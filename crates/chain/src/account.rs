//! Accounts with relaxed nonce tracking (paper §4.2.1).
//!
//! Ethereum's strict gap-free nonce ordering would force all of a user's
//! transactions into one shard. The paper relaxes this: transactions commit
//! in *increasing* nonce order without waiting for gaps to fill (like Paxos
//! ballots), which keeps replay protection while allowing, e.g., nonces
//! {1,3,5} and {2,4} from the same user to execute in two shards in
//! parallel.

use std::collections::BTreeSet;

/// Replay-safe, gap-tolerant nonce state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NonceState {
    /// Every nonce `≤ watermark` is committed.
    watermark: u64,
    /// Committed nonces above the watermark.
    committed_above: BTreeSet<u64>,
}

impl NonceState {
    /// Fresh state: no nonce committed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Can a transaction with this nonce still commit?
    pub fn is_usable(&self, nonce: u64) -> bool {
        nonce > self.watermark && !self.committed_above.contains(&nonce)
    }

    /// Marks a nonce committed.
    ///
    /// Returns `false` (and changes nothing) if it was already committed —
    /// the replay-protection property.
    pub fn commit(&mut self, nonce: u64) -> bool {
        if !self.is_usable(nonce) {
            return false;
        }
        self.committed_above.insert(nonce);
        self.compact();
        true
    }

    /// Merges another shard's committed set into this one.
    pub fn merge(&mut self, committed: &[u64]) {
        for &n in committed {
            if n > self.watermark {
                self.committed_above.insert(n);
            }
        }
        self.compact();
    }

    fn compact(&mut self) {
        while self.committed_above.remove(&(self.watermark + 1)) {
            self.watermark += 1;
        }
    }

    /// Highest committed nonce (0 when none).
    pub fn high(&self) -> u64 {
        self.committed_above.iter().next_back().copied().unwrap_or(self.watermark)
    }

    /// The contiguous-prefix watermark: every nonce `≤ watermark` is
    /// committed. Exposed for state digests and field-by-field comparison.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Committed nonces above the watermark, in increasing order. Together
    /// with [`NonceState::watermark`] this is the full observable state.
    pub fn committed_above(&self) -> impl Iterator<Item = u64> + '_ {
        self.committed_above.iter().copied()
    }
}

/// The protocol-level state of one account.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Account {
    /// Native token balance.
    pub balance: u128,
    /// Relaxed nonce state.
    pub nonces: NonceState,
    /// Whether this address holds a contract.
    pub is_contract: bool,
}

impl Account {
    /// A user account with an initial balance.
    pub fn user(balance: u128) -> Self {
        Account { balance, nonces: NonceState::new(), is_contract: false }
    }

    /// A contract account.
    pub fn contract() -> Self {
        Account { balance: 0, nonces: NonceState::new(), is_contract: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_commit_is_allowed() {
        let mut n = NonceState::new();
        assert!(n.commit(3));
        assert!(n.commit(1));
        assert!(n.commit(5));
        assert!(n.is_usable(2));
        assert!(n.is_usable(4));
        assert!(!n.is_usable(3));
    }

    #[test]
    fn replay_is_rejected() {
        let mut n = NonceState::new();
        assert!(n.commit(2));
        assert!(!n.commit(2), "replaying a committed nonce must fail");
    }

    #[test]
    fn watermark_compacts_contiguous_prefix() {
        let mut n = NonceState::new();
        for nonce in [2, 1, 3] {
            n.commit(nonce);
        }
        // 1..=3 contiguous → watermark 3 with an empty overflow set.
        assert!(!n.is_usable(3));
        assert!(n.is_usable(4));
        assert_eq!(n.high(), 3);
        assert!(n.committed_above.is_empty());
    }

    #[test]
    fn merge_unions_parallel_shards() {
        // Shard A committed {1,3,5}; shard B committed {2,4} (the paper's
        // example).
        let mut n = NonceState::new();
        n.merge(&[1, 3, 5]);
        n.merge(&[2, 4]);
        assert_eq!(n.high(), 5);
        assert!(n.is_usable(6));
        for used in 1..=5 {
            assert!(!n.is_usable(used));
        }
    }
}
